#include "sched/dag_scheduler.h"

#include <algorithm>
#include <stdexcept>

#include "common/log.h"

namespace stark {

DagScheduler::DagScheduler(sim::Simulation& sim, Cluster& cluster,
                           const CostModel& cost, LocalityManager& locality,
                           GroupManager& groups, DagOptions options)
    : sim_(&sim),
      cluster_(&cluster),
      cost_(cost),
      locality_(&locality),
      groups_(&groups),
      options_(options),
      task_scheduler_(
          sim, cluster, cost,
          [&options] {
            TaskScheduler::Options o;
            o.mcf = options.mcf;
            o.locality_wait = options.locality_wait;
            o.speculation = options.speculation;
            o.faults = options.faults;
            o.fair_share = options.tenants.fair_share;
            return o;
          }(),
          [this](DatasetId id) { return groups_->ns_of_dataset(id); }),
      admission_(options.overload),
      tenants_(options.tenants) {
  task_scheduler_.set_failure_stats(&stats_);
  if (options_.faults.slowness.enabled) {
    // Fail-slow scorecards: one tracker shared with the TaskScheduler
    // (placement deprioritization, adaptive fetch timeouts, observation
    // feed from completed runs). Band transitions become trace instants.
    slowness_ = std::make_unique<SlownessTracker>(options_.faults.slowness,
                                                  cluster.size());
    slowness_->set_band_change(
        [this](ServerId s, SlowBand old_band, SlowBand new_band) {
          if (!obs::Tracer::active(tracer_)) return;
          obs::TraceEvent e;
          e.kind = obs::TraceKind::kSlownessBand;
          e.t0 = e.t1 = sim_->now();
          e.server = s;
          e.code = static_cast<std::int16_t>(new_band);
          e.attempt = static_cast<int>(old_band);
          tracer_->emit(e);
        });
    task_scheduler_.set_slowness_tracker(slowness_.get());
  }
  if (options_.auto_cache.enabled()) {
    // Automatic cache management: last-use auto-free (and, under kFull,
    // reuse-ranked promotion). Pull-based — it acts inside submit /
    // stage-release / job-finish hooks, never via standing events.
    advisor_ = std::make_unique<CacheAdvisor>(
        cluster, options_.auto_cache,
        [this](const Dataset& ds) { return recompute_delay(ds); });
    advisor_->set_event_fn([this](DatasetId id, Bytes bytes, bool promoted) {
      if (!promoted) retired_.insert(id);
      if (!obs::Tracer::active(tracer_)) return;
      obs::TraceEvent e;
      e.kind = promoted ? obs::TraceKind::kAutoCache
                        : obs::TraceKind::kAutoFree;
      e.t0 = e.t1 = sim_->now();
      e.dataset = id;
      e.bytes = bytes;
      tracer_->emit(e);
    });
    install_insert_filter();
  }
  // Configured tenants got ids 1..N in declaration order; wire their
  // fair-share weights and admission overrides into the schedulers.
  for (std::size_t i = 0; i < options.tenants.tenants.size(); ++i) {
    const TenantOptions& t = options.tenants.tenants[i];
    const TenantId id = static_cast<TenantId>(i + 1);
    task_scheduler_.set_tenant_weight(id, t.weight);
    admission_.set_tenant_limits(id, t.max_in_flight_jobs, t.max_pending_jobs);
  }
  // A fresh insert of a block whose corruption was detected earlier means
  // lineage recompute rewrote it clean: the corruption is repaired.
  cluster.add_block_observer(
      [this](ServerId, const BlockId& id, bool inserted) {
        if (inserted && pending_block_repair_.erase(id) > 0) {
          ++stats_.corruptions_repaired;
        }
      });
}

JobId DagScheduler::submit(DatasetPtr final, ActionType action,
                           SubmitOptions opts, JobCallback cb) {
  if (final == nullptr) throw std::invalid_argument("submit: null dataset");
  const JobId id = next_job_id_++;
  auto job = std::make_unique<Job>();
  job->id = id;
  job->action = action;
  job->final = std::move(final);
  job->cb = std::move(cb);
  job->tenant = tenants_.resolve(opts.tenant);
  job->lane = std::move(opts.lane);
  job->priority = opts.priority;
  job->deadline_seconds = opts.deadline_seconds;
  job->result.id = id;
  job->result.tenant_id = job->tenant;
  job->result.tenant = tenants_.name(job->tenant);
  job->result.submit_time = sim_->now();
  Job& ref = *job;
  jobs_.emplace(id, std::move(job));

  if (obs::Tracer::active(tracer_)) {
    obs::TraceEvent e;
    e.kind = obs::TraceKind::kJobSubmit;
    e.t0 = e.t1 = sim_->now();
    e.job = id;
    e.tenant = ref.tenant;
    tracer_->emit(e);
  }

  // The deadline covers the job's whole driver-side lifetime, queueing
  // included: an interactive caller does not care *where* its time went.
  arm_deadline(ref);

  if (!options_.overload.admission_enabled) {
    ref.dispatched = true;
    start_job(ref);
    return id;
  }

  const PressureBand band = sample_pressure();
  const AdmissionController::Decision d =
      admission_.admit(ref.admission_key(), id, ref.priority, band);
  emit_admission_verdict(ref, d.verdict);
  switch (d.verdict) {
    case AdmissionVerdict::kAdmit:
      ++overload_stats_.jobs_admitted;
      ++tenant_stats(ref.tenant).jobs_admitted;
      ref.dispatched = true;
      start_job(ref);
      break;
    case AdmissionVerdict::kQueue:
      ++overload_stats_.jobs_queued;
      ++tenant_stats(ref.tenant).jobs_queued;
      ref.queued = true;
      break;
    case AdmissionVerdict::kReject:
      ++overload_stats_.jobs_rejected;
      ++tenant_stats(ref.tenant).jobs_rejected;
      close_undispatched(ref, JobStatus::kRejected,
                         "rejected at admission (pending queue full)");
      break;
    case AdmissionVerdict::kShed: {
      // The arrival took the queue slot of the lane's lowest-priority
      // oldest pending job; close the victim (its callback fires now,
      // with kShed).
      ++overload_stats_.jobs_queued;
      ++tenant_stats(ref.tenant).jobs_queued;
      ref.queued = true;
      const auto vit = jobs_.find(d.shed);
      if (vit != jobs_.end()) {
        ++overload_stats_.jobs_shed;
        ++tenant_stats(vit->second->tenant).jobs_shed;
        close_undispatched(*vit->second, JobStatus::kShed,
                           "shed from pending queue (shed-oldest)");
      }
      break;
    }
  }
  return id;
}

JobId DagScheduler::submit(DatasetPtr final, ActionType action, JobCallback cb,
                           std::string app) {
  return submit(std::move(final), action, SubmitOptions{.tenant = std::move(app)},
                std::move(cb));
}

void DagScheduler::start_job(Job& ref) {
  // Make the lineage known to the group manager (ns resolution for MCF).
  for (const auto& ds :
       collect_stage_chain(ref.final, [](DatasetId) { return false; })
           .datasets) {
    groups_->note_dataset(*ds);
  }

  build_stage(ref, ref.final, std::nullopt);
  ref.result.num_stages = static_cast<int>(ref.stages.size());

  if (advisor_) {
    // Reclaim datasets dead past their grace period *before* this job's
    // tasks plan, so the freed RAM is available to them.
    advisor_->sweep(sim_->now());
    if (options_.auto_cache.mode == AutoCacheMode::kFull) {
      const auto promoted =
          advisor_->select_promotions(ref.id, sim_->now());
      // Freshly promoted datasets joined the cache *after* build_stage
      // charged lineage refcounts; retro-charge this job's stages so the
      // kLrc policy sees them referenced while the job runs.
      for (const DatasetPtr& ds : promoted) {
        for (const auto& stage : ref.stages) {
          for (const auto& cds : stage->chain.datasets) {
            if (cds->id() == ds->id()) {
              cluster_->bump_lineage_refcount(ds->id(), +1);
              stage->lineage_charged.push_back(ds->id());
              break;
            }
          }
        }
      }
    }
  }

  // Launch every stage whose parents are already satisfied. Snapshot the
  // count: a completing map stage can append resubmission stages.
  const std::size_t built = ref.stages.size();
  for (std::size_t i = 0; i < built; ++i) maybe_launch(*ref.stages[i]);
}

void DagScheduler::close_undispatched(Job& job, JobStatus status,
                                      std::string reason) {
  if (job.done) return;
  job.done = true;
  job.queued = false;
  job.result.completed = false;
  job.result.status = status;
  job.result.failure_reason = std::move(reason);
  job.result.finish_time = sim_->now();
  job.result.delay = job.result.finish_time - job.result.submit_time;
  cancel_deadline(job.id);
  if (obs::Tracer::active(tracer_)) {
    obs::TraceEvent e;
    e.kind = obs::TraceKind::kJobFinish;
    e.t0 = job.result.submit_time;
    e.t1 = job.result.finish_time;
    e.job = job.id;
    e.tenant = job.tenant;
    tracer_->emit(e);  // no kFlagCompleted: the job never ran
  }
  const JobId id = job.id;
  results_.emplace(id, job.result);
  if (job.cb) {
    auto cb = job.cb;
    cb(results_.at(id));
  }
  jobs_.erase(id);  // `job` is dangling from here on
}

void DagScheduler::arm_deadline(Job& job) {
  const double deadline = job.deadline_seconds > 0.0
                              ? job.deadline_seconds
                              : options_.overload.deadline_seconds;
  if (deadline <= 0.0) return;
  deadline_events_[job.id] =
      sim_->after(deadline, [this, id = job.id] { on_deadline(id); });
}

void DagScheduler::cancel_deadline(JobId id) {
  const auto it = deadline_events_.find(id);
  if (it == deadline_events_.end()) return;
  // Only cancel while our entry is live: EventIds are recycled, so a
  // stale id could cancel an unrelated event.
  sim_->cancel(it->second);
  deadline_events_.erase(it);
}

void DagScheduler::on_deadline(JobId id) {
  const auto evt = deadline_events_.find(id);
  if (evt == deadline_events_.end()) return;  // job already closed
  deadline_events_.erase(evt);
  const auto it = jobs_.find(id);
  if (it == jobs_.end() || it->second->done) return;
  Job& job = *it->second;
  ++overload_stats_.deadline_exceeded;
  ++tenant_stats(job.tenant).deadline_exceeded;
  if (obs::Tracer::active(tracer_)) {
    obs::TraceEvent e;
    e.kind = obs::TraceKind::kDeadlineExceeded;
    e.t0 = e.t1 = sim_->now();
    e.job = id;
    e.tenant = job.tenant;
    if (job.final) e.dataset = job.final->id();
    tracer_->emit(e);
  }
  const double deadline = job.deadline_seconds > 0.0
                              ? job.deadline_seconds
                              : options_.overload.deadline_seconds;
  const std::string reason =
      "deadline exceeded (" + std::to_string(deadline) + " s)";
  if (job.queued) {
    admission_.remove_pending(job.admission_key(), id);
    close_undispatched(job, JobStatus::kDeadlineExceeded, reason);
  } else {
    abort_job(job, reason, JobStatus::kDeadlineExceeded);
  }
}

PressureBand DagScheduler::sample_pressure() {
  if (!pressure_fn_) return last_band_;  // permanently Green when unwired
  const PressureBand band = pressure_fn_();
  if (band != last_band_) {
    ++overload_stats_.pressure_transitions;
    if (band == PressureBand::kRed) ++overload_stats_.red_entries;
    if (obs::Tracer::active(tracer_)) {
      obs::TraceEvent e;
      e.kind = obs::TraceKind::kPressureBand;
      e.t0 = e.t1 = sim_->now();
      e.code = static_cast<std::int16_t>(band);
      e.attempt = static_cast<int>(last_band_);
      tracer_->emit(e);
    }
    // Degrade mode: Red suspends speculative copies (running ones keep
    // racing); leaving Red lifts the suspension.
    task_scheduler_.set_speculation_suspended(band == PressureBand::kRed);
    last_band_ = band;
  }
  return band;
}

void DagScheduler::release_admission_slot(Job& job) {
  if (!options_.overload.admission_enabled || !job.dispatched) return;
  job.dispatched = false;
  admission_.release(job.admission_key());
}

void DagScheduler::drain_admission_queue() {
  if (!options_.overload.admission_enabled || draining_admission_) return;
  draining_admission_ = true;
  const PressureBand band = sample_pressure();
  AdmissionKey key;
  JobId next;
  while ((next = admission_.next_dispatchable(band, &key)) != kInvalidId) {
    const auto it = jobs_.find(next);
    if (it == jobs_.end()) {
      // The queued job vanished without going through a close path; give
      // the slot back rather than leak it.
      admission_.release(key);
      continue;
    }
    Job& job = *it->second;
    job.queued = false;
    job.dispatched = true;
    start_job(job);
  }
  draining_admission_ = false;
}

void DagScheduler::emit_admission_verdict(const Job& job,
                                          AdmissionVerdict verdict) {
  if (!obs::Tracer::active(tracer_)) return;
  obs::TraceEvent e;
  e.kind = obs::TraceKind::kAdmissionVerdict;
  e.t0 = e.t1 = sim_->now();
  e.job = job.id;
  e.code = static_cast<std::int16_t>(verdict);
  e.tenant = job.tenant;
  if (job.final) e.dataset = job.final->id();
  tracer_->emit(e);
}

OverloadStats& DagScheduler::tenant_stats(TenantId tenant) {
  const auto idx = static_cast<std::size_t>(tenant < 0 ? 0 : tenant);
  if (tenant_overload_.size() <= idx) tenant_overload_.resize(idx + 1);
  return tenant_overload_[idx];
}

DagScheduler::StageRun* DagScheduler::build_stage(
    Job& job, const DatasetPtr& boundary, std::optional<ShuffleEdge> output) {
  auto stage = std::make_unique<StageRun>();
  stage->id = next_stage_id_++;
  stage->job = &job;
  stage->boundary = boundary;
  stage->output = std::move(output);
  stage->chain = collect_stage_chain(
      boundary, [this](DatasetId id) { return is_checkpointed(id); });
  stage->breakdown.stage = stage->id;
  stage->breakdown.shuffle_map = stage->output.has_value();
  StageRun* raw = stage.get();
  job.stages.push_back(std::move(stage));
  ++job.stages_remaining;

  // Lineage-refcount charge (kLrc eviction feed): every cached dataset this
  // stage's chain can read keeps a reference until the stage truly completes,
  // so the policy protects blocks that queued/running work still needs.
  for (const auto& ds : raw->chain.datasets) {
    if (ds->cache_requested()) {
      cluster_->bump_lineage_refcount(ds->id(), +1);
      raw->lineage_charged.push_back(ds->id());
    }
  }

  if (advisor_) {
    // Advisor bookkeeping mirrors the LRC charge but covers *every* chain
    // dataset: live-stage counts drive last-use detection, and
    // distinct-job re-references feed the cross-job reuse score.
    for (const auto& ds : raw->chain.datasets) {
      advisor_->on_stage_reference(ds, job.id, sim_->now());
      raw->advisor_charged.push_back(ds->id());
    }
  }
  if (!retired_.empty()) {
    // A retired dataset referenced by a new job is live again: lift the
    // re-insertion veto so its recompute can cache normally.
    for (const auto& ds : raw->chain.datasets) retired_.erase(ds->id());
  }

  for (const auto& edge : raw->chain.shuffle_deps) {
    const ShuffleKey key = edge.key();
    shuffle_edges_.try_emplace(key, edge);  // remember the producer edge
    if (shuffle_done_.contains(key)) continue;
    ++raw->waiting_parents;
    shuffle_waiters_[key].push_back(raw);
    if (shuffle_building_.insert(key).second) {
      build_stage(job, edge.map_side(), edge);
    }
  }
  return raw;
}

bool DagScheduler::output_host_healthy(ServerId s) const {
  if (s == kInvalidId) return false;
  const Server& srv = cluster_->server(s);
  return srv.alive() && srv.reachable();
}

bool DagScheduler::shuffle_healthy(const ShuffleKey& key) const {
  const auto it = map_outputs_.find(key);
  if (it == map_outputs_.end() || it->second.empty()) return false;
  for (const ServerId h : it->second) {
    if (!output_host_healthy(h)) return false;
  }
  return true;
}

void DagScheduler::maybe_launch(StageRun& stage) {
  if (stage.launched || stage.waiting_parents > 0) return;
  stage.launched = true;

  const DatasetPtr& ds = stage.boundary;
  const auto units = groups_->units_for(*ds);

  // For map stages, only launch units whose output is not already sitting
  // on a healthy host. This one code path serves the initial build, partial
  // resubmission after a fetch failure, and cross-job rebuilds alike. A
  // unit-count change (Stark-E regrouping) forces a full rebuild.
  std::vector<std::size_t> todo;
  todo.reserve(units.size());
  if (stage.output.has_value()) {
    auto& outs = map_outputs_[stage.output->key()];
    if (outs.size() != units.size()) {
      outs.assign(units.size(), kInvalidId);
    }
    // One probe for the corruption shadow instead of one per unit.
    auto& corr = corrupt_flags(stage.output->key(), units.size());
    for (std::size_t i = 0; i < units.size(); ++i) {
      if (output_host_healthy(outs[i])) continue;
      outs[i] = kInvalidId;
      corr[i] = 0;
      todo.push_back(i);
    }
    if (todo.empty()) {
      // Every unit survived (e.g. the lost outputs were regenerated by
      // another job while this stage waited): nothing to run.
      on_stage_complete(stage);
      return;
    }
  } else {
    for (std::size_t i = 0; i < units.size(); ++i) todo.push_back(i);
  }

  if (obs::Tracer::active(tracer_)) {
    obs::TraceEvent e;
    e.kind = obs::TraceKind::kStageSubmit;
    e.t0 = e.t1 = sim_->now();
    e.job = stage.job->id;
    e.stage = stage.id;
    e.attempt = stage.attempts;
    e.task_index = static_cast<int>(todo.size());  // tasks in this launch
    if (stage.output.has_value()) e.flags |= obs::kFlagShuffleMap;
    tracer_->emit(e);
  }

  auto ts = std::make_shared<TaskScheduler::TaskSet>();
  ts->job = stage.job->id;
  ts->stage = stage.id;
  ts->tenant = stage.job->tenant;
  ts->tasks.reserve(todo.size());
  stage.task_unit_pos.clear();
  stage.task_unit_pos.reserve(todo.size());
  for (std::size_t t = 0; t < todo.size(); ++t) {
    const std::size_t i = todo[t];
    TaskSpec spec;
    spec.job = stage.job->id;
    spec.stage = stage.id;
    spec.index = static_cast<int>(t);
    spec.unit_id = units[i].unit_id;
    spec.lo = units[i].lo;
    spec.hi = units[i].hi;
    spec.preferred =
        preferred_servers(stage, spec.unit_id, spec.lo, spec.hi);
    ts->tasks.push_back(std::move(spec));
    stage.task_unit_pos.push_back(static_cast<int>(i));
  }
  StageRun* stage_ptr = &stage;
  ts->plan = [this, stage_ptr](const TaskSpec& task, ServerId server) {
    return plan_task(*stage_ptr, task, server);
  };
  ts->task_done = [this, stage_ptr](const TaskSpec& task,
                                    const TaskMetrics& m) {
    // Replica learning happens at the block level (see api::Context's block
    // observer): any namespaced block materializing on an executor makes it
    // an additional home for its unit.
    if (stage_ptr->output.has_value()) {
      // MapOutputTracker registration.
      const ShuffleKey key = stage_ptr->output->key();
      auto& outs = map_outputs_[key];
      const int pos =
          stage_ptr->task_unit_pos[static_cast<std::size_t>(task.index)];
      outs[static_cast<std::size_t>(pos)] = m.server;
      // A re-registered unit is a clean rewrite: its checksum tag is fresh,
      // and if its corruption was detected earlier it now counts repaired.
      // Both maps are empty unless corruption faults are on; skip the
      // ShuffleKey hashes entirely in the fault-free common case.
      if (!map_output_corrupt_.empty()) {
        clear_corrupt_flag(key, static_cast<std::size_t>(pos));
      }
      if (!pending_shuffle_repair_.empty()) {
        const auto rit = pending_shuffle_repair_.find(key);
        if (rit != pending_shuffle_repair_.end() &&
            rit->second.erase(pos) > 0) {
          ++stats_.corruptions_repaired;
          if (rit->second.empty()) pending_shuffle_repair_.erase(rit);
        }
      }
    }
    JobResult& r = stage_ptr->job->result;
    ++r.num_tasks;
    if (m.node_local) ++r.node_local_tasks;
    r.total_cpu += m.cpu;
    r.total_gc += m.gc;
    r.total_shuffle_read += m.shuffle_read;
    r.bytes_from_cache += m.bytes_from_cache;
    r.bytes_from_net += m.bytes_from_net;
    r.bytes_from_disk += m.bytes_from_disk;
    r.bytes_from_remote += m.bytes_from_remote;
    StageBreakdown& b = stage_ptr->breakdown;
    if (b.num_tasks == 0 || m.launch_time < b.first_launch) {
      b.first_launch = m.launch_time;
    }
    b.last_finish = std::max(b.last_finish, m.finish_time);
    ++b.num_tasks;
    if (m.node_local) ++b.node_local_tasks;
    b.sched_delay += m.queue_delay();
    b.deserialize += m.deserialize;
    b.compute += m.cpu - m.deserialize;
    b.gc += m.gc;
    b.shuffle_read += m.shuffle_read;
    b.disk += m.disk;
    b.remote_read += m.remote_read;
    b.overhead += m.overhead;
    b.max_task_duration = std::max(b.max_task_duration, m.duration());
    b.bytes_from_cache += m.bytes_from_cache;
    b.bytes_from_net += m.bytes_from_net;
    b.bytes_from_disk += m.bytes_from_disk;
    b.bytes_from_remote += m.bytes_from_remote;
    if (options_.detail_task_metrics) r.tasks.push_back(m);
  };
  ts->all_done = [this, stage_ptr] { on_stage_complete(*stage_ptr); };
  ts->task_failed = [this, stage_ptr](const TaskSpec& task,
                                      const TaskFailure& failure) {
    return on_task_failed(*stage_ptr, task, failure);
  };
  ts->on_abort = [this, stage_ptr](const std::string& reason) {
    abort_job(*stage_ptr->job, reason);
  };
  task_scheduler_.submit(std::move(ts));
}

void DagScheduler::on_stage_complete(StageRun& stage) {
  Job& job = *stage.job;
  if (job.done) return;
  if (stage.output.has_value()) {
    const ShuffleKey key = stage.output->key();
    // An executor lost mid-stage can leave holes even though every task of
    // the (reduced) set finished: relaunch just the missing units.
    auto& outs = map_outputs_[key];
    bool complete = true;
    for (const ServerId h : outs) {
      if (!output_host_healthy(h)) {
        complete = false;
        break;
      }
    }
    if (!complete) {
      ++stage.attempts;
      if (stage.attempts > options_.faults.max_stage_attempts) {
        abort_job(job, "map stage for shuffle " + std::to_string(key.child) +
                           "/" + std::to_string(key.dep_index) + " failed " +
                           std::to_string(stage.attempts) + " attempts");
        return;
      }
      ++stats_.stage_resubmissions;
      ++stage.breakdown.attempts;
      if (obs::Tracer::active(tracer_)) {
        obs::TraceEvent e;
        e.kind = obs::TraceKind::kStageResubmit;
        e.t0 = e.t1 = sim_->now();
        e.job = job.id;
        e.stage = stage.id;
        e.attempt = stage.attempts;
        e.flags |= obs::kFlagShuffleMap;
        tracer_->emit(e);
      }
      stage.launched = false;
      maybe_launch(stage);
      return;
    }
    shuffle_done_.insert(key);
    shuffle_building_.erase(key);
    // Spark limits *consecutive* failed attempts: success clears the
    // count so unrelated failures over a long-lived stage never add up
    // to an abort.
    stage.attempts = 0;
    shuffle_bytes_ += stage.boundary->total_bytes();
    const auto it = shuffle_waiters_.find(key);
    if (it != shuffle_waiters_.end()) {
      const auto waiters = std::move(it->second);
      shuffle_waiters_.erase(it);
      for (StageRun* w : waiters) {
        --w->waiting_parents;
        maybe_launch(*w);
      }
    }
    // Reduce stages parked on a FetchFailed for this shuffle resume.
    const auto fit = fetch_waiters_.find(key);
    if (fit != fetch_waiters_.end()) {
      const auto parked = std::move(fit->second);
      fetch_waiters_.erase(fit);
      for (StageRun* w : parked) {
        task_scheduler_.unpark(w->job->id, w->id);
      }
    }
  }
  // Past every relaunch path: the stage is truly done, drop its lineage
  // charges so the LRC policy stops protecting its inputs.
  release_lineage_refcounts(stage);
  if (obs::Tracer::active(tracer_)) {
    obs::TraceEvent e;
    e.kind = obs::TraceKind::kStageComplete;
    e.t0 = e.t1 = sim_->now();
    e.job = job.id;
    e.stage = stage.id;
    e.task_index = stage.breakdown.num_tasks;
    if (stage.output.has_value()) e.flags |= obs::kFlagShuffleMap;
    tracer_->emit(e);
  }
  --job.stages_remaining;
  if (job.stages_remaining == 0 && !job.done) finish_job(job);
}

// Copies the per-stage phase accumulators of every stage that ran at least
// one task into the result, ordered by stage id.
void DagScheduler::collect_stage_breakdowns(Job& job) {
  job.result.stages.clear();
  for (const auto& stage : job.stages) {
    if (stage->breakdown.num_tasks > 0) {
      job.result.stages.push_back(stage->breakdown);
    }
  }
  std::sort(job.result.stages.begin(), job.result.stages.end(),
            [](const StageBreakdown& a, const StageBreakdown& b) {
              return a.stage < b.stage;
            });
}

void DagScheduler::finish_job(Job& job) {
  job.done = true;
  job.result.completed = true;
  job.result.status = JobStatus::kCompleted;
  job.result.finish_time = sim_->now();
  job.result.delay = job.result.finish_time - job.result.submit_time;
  collect_stage_breakdowns(job);
  cancel_deadline(job.id);
  release_admission_slot(job);
  if (obs::Tracer::active(tracer_)) {
    obs::TraceEvent e;
    e.kind = obs::TraceKind::kJobFinish;
    e.t0 = job.result.submit_time;
    e.t1 = job.result.finish_time;
    e.job = job.id;
    e.tenant = job.tenant;
    e.task_index = job.result.num_tasks;
    e.flags |= obs::kFlagCompleted;
    tracer_->emit(e);
  }
  ++jobs_completed_;
  const JobId id = job.id;
  results_.emplace(id, job.result);
  if (job.cb) {
    auto cb = job.cb;
    cb(results_.at(id));
  }
  jobs_.erase(id);  // `job` is dangling from here on
  // Job boundaries are the advisor's other sweep point: a dataset whose
  // last consumer just finished starts its grace period now and is
  // reclaimed by a later submit/finish once the period elapses.
  if (advisor_) advisor_->sweep(sim_->now());
  drain_admission_queue();
}

void DagScheduler::abort_job(Job& job, const std::string& reason,
                             JobStatus status) {
  if (job.done) return;
  job.done = true;
  job.result.completed = false;
  job.result.status = status;
  job.result.failure_reason = reason;
  job.result.finish_time = sim_->now();
  job.result.delay = job.result.finish_time - job.result.submit_time;
  collect_stage_breakdowns(job);
  if (obs::Tracer::active(tracer_)) {
    obs::TraceEvent e;
    e.kind = obs::TraceKind::kJobFinish;
    e.t0 = job.result.submit_time;
    e.t1 = job.result.finish_time;
    e.job = job.id;
    e.tenant = job.tenant;
    e.task_index = job.result.num_tasks;
    tracer_->emit(e);  // no kFlagCompleted: the job aborted
  }
  ++stats_.jobs_aborted;
  STARK_LOG_INFO("job %d aborted: %s", job.id, reason.c_str());
  cancel_deadline(job.id);
  release_admission_slot(job);
  task_scheduler_.cancel_job(job.id);
  // The StageRuns die with the job below: drop any lineage charges their
  // completed-stage path never released (no-op for stages that did).
  for (const auto& stage : job.stages) release_lineage_refcounts(*stage);

  // Purge this job's stages from every waiter registry (the StageRun
  // objects die with the job).
  const auto purge = [&job](auto& registry) {
    for (auto it = registry.begin(); it != registry.end();) {
      auto& v = it->second;
      std::erase_if(v, [&job](StageRun* w) { return w->job == &job; });
      it = v.empty() ? registry.erase(it) : std::next(it);
    }
  };
  purge(shuffle_waiters_);
  purge(fetch_waiters_);

  // Map stages this job was building that other jobs wait on become
  // orphans: release the building guard and re-home them below.
  std::vector<ShuffleKey> orphans;
  for (const auto& stage : job.stages) {
    if (!stage->output.has_value()) continue;
    const ShuffleKey key = stage->output->key();
    if (shuffle_done_.contains(key)) continue;
    if (shuffle_building_.erase(key) > 0) orphans.push_back(key);
  }

  const JobId id = job.id;
  results_.emplace(id, job.result);
  if (job.cb) {
    auto cb = job.cb;
    cb(results_.at(id));
  }
  jobs_.erase(id);  // `job` is dangling from here on

  for (const ShuffleKey& key : orphans) {
    const auto wit = shuffle_waiters_.find(key);
    if (wit == shuffle_waiters_.end() || wit->second.empty()) {
      // Nobody needs it; a future job will rebuild on demand.
      continue;
    }
    rebuild_shuffle(key, *wit->second.front()->job);
  }
  drain_admission_queue();
}

void DagScheduler::rebuild_shuffle(const ShuffleKey& key, Job& owner) {
  if (!shuffle_building_.insert(key).second) return;  // already in flight
  ++stats_.stage_resubmissions;
  const ShuffleEdge& edge = shuffle_edges_.at(key);
  const std::size_t before = owner.stages.size();
  build_stage(owner, edge.map_side(), edge);
  if (obs::Tracer::active(tracer_)) {
    // The rebuilt map stage is a fresh StageRun: owner.stages[before].
    obs::TraceEvent e;
    e.kind = obs::TraceKind::kStageResubmit;
    e.t0 = e.t1 = sim_->now();
    e.job = owner.id;
    e.stage = owner.stages[before]->id;
    e.flags |= obs::kFlagShuffleMap;
    tracer_->emit(e);
  }
  for (std::size_t i = before; i < owner.stages.size(); ++i) {
    maybe_launch(*owner.stages[i]);
  }
}

TaskFailureAction DagScheduler::on_task_failed(StageRun& stage,
                                               const TaskSpec& task,
                                               const TaskFailure& failure) {
  (void)task;
  if (failure.kind != TaskFailureKind::kFetchFailed) {
    // Plain errors and executor losses retry within the task set.
    return TaskFailureAction::kRetry;
  }
  ++stats_.fetch_failures;
  const ShuffleKey key = failure.shuffle;
  if (shuffle_healthy(key)) {
    // Stale epoch: the shuffle was rebuilt after this task launched with
    // the old output locations. Spark's DAGScheduler ignores such fetch
    // failures; the task simply reruns against the fresh locations.
    return TaskFailureAction::kRetry;
  }
  STARK_LOG_DEBUG("fetch failure: stage %d shuffle %d/%d source %d",
                  stage.id, key.child, key.dep_index, failure.fetch_source);
  // Invalidate everything the failing host served for this shuffle; the
  // relaunch skips units that survived elsewhere.
  const auto oit = map_outputs_.find(key);
  if (oit != map_outputs_.end() && failure.fetch_source != kInvalidId) {
    for (std::size_t i = 0; i < oit->second.size(); ++i) {
      if (oit->second[i] == failure.fetch_source) {
        oit->second[i] = kInvalidId;
        clear_corrupt_flag(key, i);
      }
    }
  }
  shuffle_done_.erase(key);

  // First FetchFailed of this round for this reduce stage opens a new stage
  // attempt (spark.stage.maxConsecutiveAttempts).
  auto& parked = fetch_waiters_[key];
  if (std::find(parked.begin(), parked.end(), &stage) == parked.end()) {
    parked.push_back(&stage);
    ++stage.attempts;
    ++stage.breakdown.attempts;
    if (stage.attempts > options_.faults.max_stage_attempts) {
      abort_job(*stage.job,
                "stage " + std::to_string(stage.id) + " exceeded " +
                    std::to_string(options_.faults.max_stage_attempts) +
                    " attempts after repeated fetch failures");
      return TaskFailureAction::kRetry;  // moot: the set is cancelled
    }
  }
  rebuild_shuffle(key, *stage.job);
  return TaskFailureAction::kPark;
}

void DagScheduler::on_executor_lost(ServerId s, double detection_latency) {
  STARK_LOG_DEBUG("executor %d lost (detection latency %.3f)", s,
                  detection_latency);
  ++stats_.heartbeat_detections;
  stats_.detection_latency_sum += detection_latency;
  locality_->on_server_failure(s);
  // MapOutputTracker: every map output hosted there is gone; shuffles that
  // lose outputs are no longer complete and rebuild on demand.
  for (auto& [key, hosts] : map_outputs_) {
    // Probe the corruption shadow at most once per shuffle, not per unit.
    std::vector<char>* corr = nullptr;
    bool corr_looked_up = false;
    bool lost = false;
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      if (hosts[i] == s) {
        hosts[i] = kInvalidId;
        if (!corr_looked_up) {
          corr_looked_up = true;
          const auto cit = map_output_corrupt_.find(key);
          corr = cit != map_output_corrupt_.end() ? &cit->second : nullptr;
        }
        if (corr != nullptr && i < corr->size()) (*corr)[i] = 0;
        lost = true;
      }
    }
    if (lost) shuffle_done_.erase(key);
  }
  task_scheduler_.handle_server_failure(s);
}

// --- silent-data-corruption faults ------------------------------------------

std::vector<char>& DagScheduler::corrupt_flags(const ShuffleKey& key,
                                               std::size_t n) {
  auto& v = map_output_corrupt_[key];
  if (v.size() != n) v.assign(n, 0);
  return v;
}

void DagScheduler::clear_corrupt_flag(const ShuffleKey& key,
                                      std::size_t unit) {
  const auto it = map_output_corrupt_.find(key);
  if (it != map_output_corrupt_.end() && unit < it->second.size()) {
    it->second[unit] = 0;
  }
}

void DagScheduler::emit_corruption_event(obs::TraceKind kind, ServerId host,
                                         DatasetId dataset, int partition,
                                         Bytes bytes, bool shuffle) {
  if (!obs::Tracer::active(tracer_)) return;
  obs::TraceEvent e;
  e.kind = kind;
  e.t0 = e.t1 = sim_->now();
  e.server = host;
  e.dataset = dataset;
  e.partition = partition;
  e.bytes = bytes;
  if (shuffle) e.flags |= obs::kFlagShuffleMap;
  tracer_->emit(e);
}

void DagScheduler::note_corruption_detected(ServerId host, DatasetId dataset,
                                            int partition, Bytes bytes,
                                            bool shuffle) {
  ++stats_.corruptions_detected;
  STARK_LOG_DEBUG("corruption detected on %d: dataset %d partition %d", host,
                  dataset, partition);
  task_scheduler_.record_integrity_failure(host);
  emit_corruption_event(obs::TraceKind::kCorruptionDetected, host, dataset,
                        partition, bytes, shuffle);
}

bool DagScheduler::corrupt_cached_block(ServerId s, const BlockId& id) {
  if (!cluster_->corrupt_cached_block(s, id)) return false;
  ++stats_.corruptions_injected;
  emit_corruption_event(obs::TraceKind::kBlockCorrupt, s, id.dataset,
                        id.partition,
                        cluster_->server(s).storage().block_bytes(id),
                        /*shuffle=*/false);
  return true;
}

bool DagScheduler::corrupt_spilled_block(ServerId s, const BlockId& id) {
  if (!cluster_->corrupt_spilled_block(s, id)) return false;
  ++stats_.corruptions_injected;
  emit_corruption_event(obs::TraceKind::kBlockCorrupt, s, id.dataset,
                        id.partition, cluster_->disk_block_bytes(s, id),
                        /*shuffle=*/false);
  return true;
}

bool DagScheduler::corrupt_remote_block(const BlockId& id) {
  if (!cluster_->corrupt_remote_block(id)) return false;
  ++stats_.corruptions_injected;
  emit_corruption_event(obs::TraceKind::kBlockCorrupt,
                        cluster_->remote_block_origin(id), id.dataset,
                        id.partition, cluster_->remote_block_bytes(id),
                        /*shuffle=*/false);
  return true;
}

bool DagScheduler::corrupt_shuffle_output(const ShuffleKey& key, int unit) {
  const auto oit = map_outputs_.find(key);
  if (oit == map_outputs_.end()) return false;
  if (unit < 0 || static_cast<std::size_t>(unit) >= oit->second.size()) {
    return false;
  }
  const ServerId host = oit->second[static_cast<std::size_t>(unit)];
  if (!output_host_healthy(host)) return false;
  auto& corr = corrupt_flags(key, oit->second.size());
  if (corr[static_cast<std::size_t>(unit)]) return false;  // already corrupt
  corr[static_cast<std::size_t>(unit)] = 1;
  ++stats_.corruptions_injected;
  emit_corruption_event(obs::TraceKind::kBlockCorrupt, host, key.child, unit,
                        /*bytes=*/0.0, /*shuffle=*/true);
  return true;
}

std::vector<DagScheduler::ShuffleOutputRef>
DagScheduler::live_shuffle_outputs() const {
  std::vector<ShuffleOutputRef> out;
  for (const auto& [key, hosts] : map_outputs_) {
    const auto cit = map_output_corrupt_.find(key);
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      if (!output_host_healthy(hosts[i])) continue;
      if (cit != map_output_corrupt_.end() && i < cit->second.size() &&
          cit->second[i]) {
        continue;
      }
      out.push_back({key, static_cast<int>(i), hosts[i]});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ShuffleOutputRef& a, const ShuffleOutputRef& b) {
              if (a.key.child != b.key.child) return a.key.child < b.key.child;
              if (a.key.dep_index != b.key.dep_index) {
                return a.key.dep_index < b.key.dep_index;
              }
              return a.unit < b.unit;
            });
  return out;
}

JobResult DagScheduler::run_job(DatasetPtr final, ActionType action) {
  const JobId id = submit(std::move(final), action);
  sim_->run_until([this, id] { return job_done(id); });
  if (!job_done(id)) {
    throw std::runtime_error("run_job: simulation drained before completion");
  }
  return results_.at(id);
}

bool DagScheduler::job_done(JobId id) const { return results_.contains(id); }

const JobResult& DagScheduler::result(JobId id) const {
  return results_.at(id);
}

// --- preferred locations ----------------------------------------------------

std::vector<ServerId> DagScheduler::preferred_servers(const StageRun& stage,
                                                      int unit_id, int lo,
                                                      int hi) {
  std::vector<ServerId> out;
  const DatasetPtr& boundary = stage.boundary;
  if (options_.use_locality_homes && !boundary->ns().empty() &&
      locality_->has(boundary->ns())) {
    // Paper §III-B/E: the DAGScheduler consults the LocalityManager for the
    // preferred executors of the collection partition, then runs delay
    // scheduling against those. The home set grows when hot units replicate
    // (see the task-completion hook), so this stays authoritative even for
    // replicated partitions. Using only homes — not arbitrary cache
    // locations — is what moves a split-off group to its newly assigned
    // executor (Fig 14's first-job rebuild).
    for (ServerId s : locality_->homes(boundary->ns(), unit_id)) {
      const Server& srv = cluster_->server(s);
      if (srv.alive() && srv.reachable()) out.push_back(s);
    }
    if (!out.empty()) return out;
  }
  // First narrow-reachable dataset with all of the unit's partitions cached
  // on a common server (Spark's getPreferredLocs walk).
  for (const auto& ds : stage.chain.datasets) {
    std::vector<ServerId> common;
    for (int p = lo; p < hi; ++p) {
      const auto& locs = cluster_->cache_locations({ds->id(), p});
      if (locs.empty()) {
        common.clear();
        break;
      }
      if (p == lo) {
        common = locs;
      } else {
        std::vector<ServerId> next;
        for (ServerId s : common) {
          if (std::find(locs.begin(), locs.end(), s) != locs.end()) {
            next.push_back(s);
          }
        }
        common = std::move(next);
      }
      if (common.empty()) break;
    }
    if (!common.empty()) {
      for (ServerId s : common) {
        const Server& srv = cluster_->server(s);
        if (std::find(out.begin(), out.end(), s) == out.end() &&
            srv.alive() && srv.reachable()) {
          out.push_back(s);
        }
      }
      break;
    }
  }
  // Hierarchy-aware placement (remote tier only, so the historical
  // scheduler stays byte-identical): with no RAM replica anywhere, a
  // server holding every partition of the boundary in its local spill
  // store still beats recompute — the spill copies are only readable
  // there. Remote-pool copies are location-independent and add no
  // preference. Scan order is server-id order: deterministic.
  if (out.empty() && cluster_->remote_memory_enabled() &&
      stage.boundary->storage_level() ==
          Dataset::StorageLevel::kMemoryAndDisk) {
    for (ServerId s = 0; s < cluster_->size(); ++s) {
      const Server& srv = cluster_->server(s);
      if (!srv.alive() || !srv.reachable()) continue;
      bool all = true;
      for (int p = lo; p < hi; ++p) {
        if (!cluster_->disk_cached_on({stage.boundary->id(), p}, s)) {
          all = false;
          break;
        }
      }
      if (all) out.push_back(s);
    }
  }
  return out;
}

// --- task planning -----------------------------------------------------------

void DagScheduler::plan_chain(const DatasetPtr& ds, int partition,
                              ServerId server, DatasetId boundary_id,
                              TaskPlan& plan) {
  const Bytes bytes = ds->partition_bytes()[static_cast<std::size_t>(partition)];
  const BlockId bid{ds->id(), partition};
  const bool serialized =
      ds->storage_level() != Dataset::StorageLevel::kMemory;
  const auto emit_cache_probe = [&](bool hit, Bytes probe_bytes) {
    if (!obs::Tracer::active(tracer_)) return;
    obs::TraceEvent e;
    e.kind = hit ? obs::TraceKind::kBlockHit : obs::TraceKind::kBlockMiss;
    e.t0 = e.t1 = sim_->now();
    e.server = server;
    e.dataset = ds->id();
    e.partition = partition;
    e.bytes = probe_bytes;
    tracer_->emit(e);
  };
  if (cluster_->cached_on(bid, server)) {
    const Bytes stored = serialized ? bytes * cost_.serialization_ratio : bytes;
    const bool corrupt = cluster_->cached_block_corrupt(server, bid);
    bool serve = true;
    if (options_.faults.verify_reads) {
      // Verified read: re-checksum the stored copy before trusting it.
      plan.cpu += cost_.verify_seconds(stored);
      stats_.bytes_reverified += stored;
      if (corrupt) {
        // Mismatch: drop the replica and fall through to lineage
        // recompute. The probe downgrades to a miss — never serve
        // poisoned bytes.
        note_corruption_detected(server, ds->id(), partition, stored,
                                 /*shuffle=*/false);
        pending_block_repair_.insert(bid);
        cluster_->remove_block(server, bid);
        serve = false;
      }
    } else if (corrupt) {
      ++stats_.corrupt_reads_undetected;
    }
    if (serve) {
      if (serialized) {
        // MEMORY_ONLY_SER / MEMORY_AND_DISK: smaller footprint, but every
        // read pays deserialization.
        const double deser = cost_.cpu_seconds(OpKind::kSourceParse, stored);
        plan.cpu += deser;
        plan.deserialize += deser;
        plan.bytes_cache += stored;
      } else {
        plan.cpu += cost_.cpu_seconds(OpKind::kMemScan, bytes);
        plan.bytes_cache += bytes;
      }
      emit_cache_probe(true, bytes);
      ++cache_stats_.hits;
      cache_stats_.bytes_from_cache += bytes;
      // DAMON-style access sampling: served reads are the advisor's
      // recency/frequency evidence against auto-freeing this dataset.
      if (advisor_) advisor_->on_block_read(*ds, sim_->now());
      cluster_->touch_block(server, bid);
      if (options_.cache.pin_running_blocks) {
        // The block must survive until this task releases it; the
        // TaskScheduler pins at launch and unpins at resource release.
        plan.blocks_referenced.push_back(bid);
      }
      return;
    }
  }
  // A miss only means something for datasets the program asked to cache;
  // uncached intermediates are expected to recompute.
  if (ds->cache_requested()) {
    emit_cache_probe(false, bytes);
    ++cache_stats_.misses;
  }
  // The block may live one tier down, in the disaggregated remote-memory
  // pool: a one-sided read there beats both disk and recompute, and the
  // copy faults back up into this executor's cache when the task lands.
  if (cluster_->remote_memory_enabled() && cluster_->remote_cached(bid)) {
    const Bytes stored = cluster_->remote_block_bytes(bid);
    const bool corrupt = cluster_->remote_block_corrupt(bid);
    bool serve = true;
    if (options_.faults.verify_reads) {
      plan.cpu += cost_.verify_seconds(stored);
      stats_.bytes_reverified += stored;
      if (corrupt) {
        // The one-sided read happened before the checksum failed; charge
        // it, drop the poisoned pool copy and keep falling down the
        // hierarchy (disk, then lineage) — never serve poisoned bytes.
        plan.bytes_remote += stored;
        ++plan.remote_reads;
        note_corruption_detected(cluster_->remote_block_origin(bid), ds->id(),
                                 partition, stored, /*shuffle=*/false);
        pending_block_repair_.insert(bid);
        cluster_->drop_remote_block(bid);
        serve = false;
      }
    } else if (corrupt) {
      ++stats_.corrupt_reads_undetected;
    }
    if (serve) {
      // Pool copies are serialized (demoted from a spill-eligible store):
      // pay the one-sided transfer plus deserialization.
      const double deser = cost_.cpu_seconds(OpKind::kSourceParse, stored);
      plan.bytes_remote += stored;
      ++plan.remote_reads;
      plan.cpu += deser;
      plan.deserialize += deser;
      ++cache_stats_.remote_hits;
      cache_stats_.bytes_from_remote += stored;
      cluster_->touch_remote_block(bid);
      fault_back(ds, partition, server, boundary_id, stored,
                 MemoryTier::kRemote, plan);
      return;
    }
  }
  if (ds->storage_level() == Dataset::StorageLevel::kMemoryAndDisk &&
      cluster_->disk_cached_on(bid, server)) {
    const Bytes stored = cluster_->disk_block_bytes(server, bid);
    const bool corrupt = cluster_->spilled_block_corrupt(server, bid);
    bool serve = true;
    if (options_.faults.verify_reads) {
      plan.cpu += cost_.verify_seconds(stored);
      stats_.bytes_reverified += stored;
      if (corrupt) {
        // The read happened before the checksum failed; charge it, drop
        // the stale spilled copy and recompute from lineage instead.
        plan.bytes_disk += stored;
        note_corruption_detected(server, ds->id(), partition, stored,
                                 /*shuffle=*/false);
        pending_block_repair_.insert(bid);
        cluster_->drop_spilled_block(server, bid);
        serve = false;
      }
    } else if (corrupt) {
      ++stats_.corrupt_reads_undetected;
    }
    if (serve) {
      // Spilled copy on local disk: read + deserialize, no recompute.
      const double deser = cost_.cpu_seconds(OpKind::kSourceParse, stored);
      plan.bytes_disk += stored;
      plan.cpu += deser;
      plan.deserialize += deser;
      fault_back(ds, partition, server, boundary_id, stored, MemoryTier::kDisk,
                 plan);
      return;
    }
  }
  if (is_checkpointed(ds->id())) {
    const Bytes ck = bytes * cost_.serialization_ratio;
    const double deser = cost_.cpu_seconds(OpKind::kSourceParse, ck);
    plan.bytes_disk += ck;
    plan.cpu += deser;  // deserialize
    plan.deserialize += deser;
  } else {
    if (ds->cache_requested()) {
      // A cache-requested partition rebuilt via lineage: the cost an
      // eviction policy is judged on (headline of the cache ablation).
      ++cache_stats_.recomputes;
      cache_stats_.bytes_recomputed += bytes;
    }
    if (ds->op() != Op::kSource) {
      // All-dataset accounting (the advisor's headline): every partition
      // rebuilt via lineage, cached or not. A source read is a load.
      ++cache_stats_.recomputes_all;
      cache_stats_.bytes_recomputed_all += bytes;
    }
    const auto add_fetch = [&](Bytes fetch) {
      // Reduce-side fetch: map outputs stream from remote disks over the
      // network. Bytes accumulate here; plan_task turns them into time
      // using the cluster-wide congestion factors.
      ++plan.fetch_waves;
      plan.bytes_net += fetch;
      if (options_.faults.verify_reads) {
        // spark.shuffle.checksum.enabled: every fetched unit is
        // re-checksummed on arrival.
        plan.cpu += cost_.verify_seconds(fetch);
        stats_.bytes_reverified += fetch;
      }
    };
    switch (ds->op()) {
      case Op::kSource: {
        const double deser = cost_.cpu_seconds(OpKind::kSourceParse, bytes);
        plan.bytes_disk += bytes;
        plan.cpu += deser;
        plan.deserialize += deser;
        break;
      }
      case Op::kMap:
      case Op::kFilter: {
        const DatasetPtr& parent = ds->deps()[0].parent;
        plan_chain(parent, partition, server, boundary_id, plan);
        plan.cpu += cost_.cpu_seconds(
            ds->op() == Op::kMap ? OpKind::kMap : OpKind::kFilter,
            parent->partition_bytes()[static_cast<std::size_t>(partition)]);
        break;
      }
      case Op::kPartitionBy:
      case Op::kReduceByKey: {
        const auto& dep = ds->deps()[0];
        if (!dep.wide) {
          plan_chain(dep.parent, partition, server, boundary_id, plan);
          if (ds->op() == Op::kReduceByKey) {
            plan.cpu += cost_.cpu_seconds(
                OpKind::kReduce,
                dep.parent
                    ->partition_bytes()[static_cast<std::size_t>(partition)]);
          }
        } else {
          const Bytes fetch =
              ds->shuffle_input_bytes(0)[static_cast<std::size_t>(partition)];
          add_fetch(fetch);
          plan.cpu += cost_.cpu_seconds(OpKind::kShuffleRead, fetch);
          if (ds->op() == Op::kReduceByKey) {
            plan.cpu += cost_.cpu_seconds(OpKind::kReduce, fetch);
          }
        }
        break;
      }
      case Op::kCoGroup:
      case Op::kJoin:
      case Op::kUnion: {
        if (ds->op() != Op::kUnion) {
          plan.cogroup_width = std::max(plan.cogroup_width,
                                        static_cast<int>(ds->deps().size()));
        }
        Bytes total_in = 0.0;
        for (std::size_t i = 0; i < ds->deps().size(); ++i) {
          const auto& dep = ds->deps()[i];
          if (!dep.wide) {
            plan_chain(dep.parent, partition, server, boundary_id, plan);
            total_in +=
                dep.parent
                    ->partition_bytes()[static_cast<std::size_t>(partition)];
          } else {
            const Bytes fetch =
                ds->shuffle_input_bytes(i)[static_cast<std::size_t>(partition)];
            add_fetch(fetch);
            plan.cpu += cost_.cpu_seconds(OpKind::kShuffleRead, fetch);
            total_in += fetch;
          }
        }
        const OpKind kind = ds->op() == Op::kCoGroup ? OpKind::kCoGroup
                            : ds->op() == Op::kJoin  ? OpKind::kJoin
                                                     : OpKind::kUnion;
        plan.cpu += cost_.cpu_seconds(kind, total_in);
        break;
      }
    }
  }
  if (ds->cache_requested() &&
      (options_.replicate_on_recompute || ds->id() == boundary_id)) {
    // A dataset's own materialization job always caches its output; whether
    // ancestors recomputed in passing become lasting replicas depends on
    // the engine's tracking model (see DagOptions::replicate_on_recompute).
    const Bytes footprint =
        serialized ? bytes * cost_.serialization_ratio : bytes;
    double recompute_cost = 0.0;
    if (options_.cache.policy == EvictionPolicyKind::kCostSize) {
      // Only the cost/size policy reads the estimate; skip the lineage
      // walk otherwise so the default planner path stays byte-identical.
      recompute_cost = recompute_delay_partition(
          *ds, static_cast<std::size_t>(partition));
    }
    plan.blocks_to_cache.push_back(
        {bid, footprint,
         ds->storage_level() == Dataset::StorageLevel::kMemoryAndDisk,
         recompute_cost});
  }
}

void DagScheduler::fault_back(const DatasetPtr& ds, int partition,
                              ServerId server, DatasetId boundary_id,
                              Bytes stored, MemoryTier found_in,
                              TaskPlan& plan) {
  // Promotion is only meaningful with a hierarchy to climb; gating on the
  // tier keeps the two-tier engine's disk reads byte-identical.
  if (!cluster_->remote_memory_enabled()) return;
  if (!ds->cache_requested() ||
      !(options_.replicate_on_recompute || ds->id() == boundary_id)) {
    return;
  }
  const BlockId bid{ds->id(), partition};
  double recompute_cost = 0.0;
  if (options_.cache.policy == EvictionPolicyKind::kCostSize) {
    recompute_cost =
        recompute_delay_partition(*ds, static_cast<std::size_t>(partition));
  }
  // The task-completion hook inserts this into the executor's RAM store;
  // insert_block then supersedes (erases) the lower-tier copy, so the
  // block has *moved* up the hierarchy rather than multiplied.
  plan.blocks_to_cache.push_back(
      {bid, stored,
       ds->storage_level() == Dataset::StorageLevel::kMemoryAndDisk,
       recompute_cost});
  ++cache_stats_.fault_backs;
  if (obs::Tracer::active(tracer_)) {
    obs::TraceEvent e;
    e.kind = obs::TraceKind::kBlockFaultBack;
    e.code = static_cast<std::int16_t>(found_in);
    e.t0 = e.t1 = sim_->now();
    e.server = server;
    e.dataset = ds->id();
    e.partition = partition;
    e.bytes = stored;
    tracer_->emit(e);
  }
}

TaskPlan DagScheduler::plan_task(const StageRun& stage, const TaskSpec& task,
                                 ServerId server) {
  // Shuffle fetch feasibility: if any map output this task must read sits
  // on a dead/partitioned host (or is gone entirely), the task cannot
  // complete — it burns its connection retries and raises FetchFailed.
  for (const auto& edge : stage.chain.shuffle_deps) {
    const ShuffleKey key = edge.key();
    const auto oit = map_outputs_.find(key);
    if (oit == map_outputs_.end()) continue;  // pre-tracking shuffle
    for (const ServerId h : oit->second) {
      if (output_host_healthy(h)) continue;
      TaskPlan failed;
      failed.fetch_failure = TaskPlan::FetchFailure{key, h};
      return failed;
    }
    const auto cit = map_output_corrupt_.find(key);
    if (cit == map_output_corrupt_.end()) continue;
    if (options_.faults.verify_reads) {
      // Verified fetch: a checksum mismatch surfaces as FetchFailed, the
      // same path a lost host takes (corrupt-fetch-as-FetchFailed). Every
      // corrupt unit of the shuffle is invalidated at once — a reduce task
      // fetches them all anyway — so a single resubmission round
      // regenerates them instead of burning one stage attempt per unit.
      ServerId first_bad = kInvalidId;
      for (std::size_t i = 0;
           i < cit->second.size() && i < oit->second.size(); ++i) {
        if (!cit->second[i]) continue;
        const ServerId host = oit->second[i];
        note_corruption_detected(host, key.child, static_cast<int>(i),
                                 /*bytes=*/0.0, /*shuffle=*/true);
        pending_shuffle_repair_[key].insert(static_cast<int>(i));
        cit->second[i] = 0;
        oit->second[i] = kInvalidId;
        if (first_bad == kInvalidId) first_bad = host;
      }
      if (first_bad != kInvalidId) {
        // The shuffle is no longer complete; on_task_failed's
        // shuffle_healthy check must see that (stale-epoch filtering
        // would otherwise swallow this failure — the host is alive).
        shuffle_done_.erase(key);
        TaskPlan failed;
        failed.fetch_failure = TaskPlan::FetchFailure{key, first_bad};
        return failed;
      }
    } else {
      for (const char c : cit->second) {
        if (c) ++stats_.corrupt_reads_undetected;
      }
    }
  }
  TaskPlan plan;
  for (int p = task.lo; p < task.hi; ++p) {
    plan_chain(stage.boundary, p, server, stage.boundary->id(), plan);
    if (stage.output.has_value()) {
      // Shuffle-map side: bucket the partition by the child's partitioner
      // and commit map outputs to persistent storage.
      const Bytes out =
          stage.boundary->partition_bytes()[static_cast<std::size_t>(p)];
      plan.cpu += cost_.cpu_seconds(OpKind::kShuffleWrite, out);
      plan.bytes_written += out;
    }
  }
  // Gray failure: a degraded server stretches the simulated time each
  // resource contributes (slow disk, saturated NIC, throttled CPU).
  const ServerDegradation& deg = cluster_->server(server).degradation();
  if (deg.degraded()) {
    plan.cpu *= deg.cpu;
    plan.deserialize *= deg.cpu;  // keeps the share of cpu consistent
  }
  // I/O times under contention: per-flow bandwidth shrinks once concurrent
  // flows outnumber NICs/spindles (average flows-per-server model).
  const double servers =
      std::max(1.0, static_cast<double>(cluster_->alive_servers().size()));
  const double net_factor = std::max(
      1.0, (task_scheduler_.active_net_flows() + 1.0) / servers);
  const double disk_factor = std::max(
      1.0, (task_scheduler_.active_disk_flows() + 1.0) / servers);
  plan.shuffle_read =
      (plan.fetch_waves * cost_.net_latency +
       plan.bytes_net /
           (std::min(cost_.net_bw, cost_.disk_read_bw) / net_factor)) *
      deg.net;
  plan.disk = (plan.bytes_disk / (cost_.disk_read_bw / disk_factor) +
               plan.bytes_written / (cost_.disk_write_bw / disk_factor)) *
              deg.disk;
  // Remote-memory pool reads: one-sided fetches over the disaggregated
  // fabric — no disk congestion factor, but the executor's own NIC is an
  // endpoint, so its net degradation applies. Exactly 0.0 (and therefore
  // byte-identical) when the tier is off: no probe ever fills these fields.
  plan.remote = (plan.remote_reads * cost_.remote_read_latency +
                 plan.bytes_remote / cost_.remote_read_bw) *
                deg.net;
  if (slowness_) {
    // Fail-slow domain: record the executor-side stretch ratios the
    // completion path will feed the scorecards, then re-price the fetch
    // phase source-host-aware — a slow map-output host drags the slice it
    // serves — and hedge the lagging slice when it blows the adaptive
    // deadline. Gated so the default planner path stays byte-identical.
    plan.slowness.emplace();
    plan.slowness->cpu_ratio = static_cast<float>(deg.cpu);
    plan.slowness->disk_ratio = static_cast<float>(deg.disk);
    if (plan.bytes_net > 0.0) {
      // The executor's own NIC is an endpoint of every fetch it performs.
      plan.slowness->source_net.emplace_back(server,
                                             static_cast<float>(deg.net));
    }
    apply_source_slowness(stage, task, net_factor, plan);
    plan.slowness->fetch_seconds = plan.shuffle_read;
  }
  plan.working_set =
      cost_.working_set_expansion *
      (plan.bytes_cache + plan.bytes_net + plan.bytes_disk +
       plan.bytes_remote) *
      std::min(cost_.cogroup_ws_factor_cap,
               1.0 + cost_.cogroup_ws_per_input *
                         std::max(0, plan.cogroup_width - 1));
  plan.gc = plan.cpu *
            cost_.gc_factor(
                cluster_->server(server).heap_utilization(plan.working_set));
  return plan;
}

DagScheduler::HedgeBudget& DagScheduler::hedge_budget(TenantId tenant) {
  const auto idx = static_cast<std::size_t>(tenant < 0 ? 0 : tenant);
  if (hedge_budget_.size() <= idx) hedge_budget_.resize(idx + 1);
  return hedge_budget_[idx];
}

void DagScheduler::apply_source_slowness(const StageRun& stage,
                                         const TaskSpec& task,
                                         double net_factor, TaskPlan& plan) {
  if (plan.bytes_net <= 0.0) return;
  HedgeBudget& hb = hedge_budget(stage.job->tenant);
  // Every fetched byte widens the tenant's hedge budget, hedged or not:
  // the cap is a fraction of *total* fetch traffic, not of hedged jobs'.
  hb.fetched += plan.bytes_net;
  // Distinct registered map-output hosts across this task's shuffle deps.
  // The plan already failed fast if any host were dead, so these are live.
  auto& hosts = hedge_hosts_scratch_;
  hosts.clear();
  for (const auto& edge : stage.chain.shuffle_deps) {
    const auto oit = map_outputs_.find(edge.key());
    if (oit == map_outputs_.end()) continue;
    for (const ServerId h : oit->second) {
      if (h == kInvalidId) continue;
      if (std::find(hosts.begin(), hosts.end(), h) == hosts.end()) {
        hosts.push_back(h);
      }
    }
  }
  if (hosts.empty()) return;
  // Per-slice timing is observable by the executor's fetch client, so
  // every source host yields one net observation at completion — healthy
  // hosts report ratio 1.0, which is the recovery evidence that lets a
  // Degraded band decay once the episode ends.
  double slow_factor = 1.0;
  ServerId slow_host = kInvalidId;
  for (const ServerId h : hosts) {
    const double f = cluster_->server(h).degradation().net;
    plan.slowness->source_net.emplace_back(h, static_cast<float>(f));
    if (f > slow_factor) {
      slow_factor = f;
      slow_host = h;
    }
  }
  if (slow_host == kInvalidId) return;  // every source healthy
  // The slowest host's slice is limited by *its* NIC: the fetch phase ends
  // when that last slice lands, stretching the base time by the slice's
  // extra transfer seconds.
  const double eff_bw =
      std::min(cost_.net_bw, cost_.disk_read_bw) / net_factor;
  const Bytes slice = plan.bytes_net / static_cast<double>(hosts.size());
  const double extra = slice * (slow_factor - 1.0) / eff_bw;
  const double projected = plan.shuffle_read + extra;
  const SlownessOptions& so = options_.faults.slowness;
  const double deadline = slowness_->fetch_deadline();
  bool hedged = false;
  bool hedge_won = false;
  if (so.hedging && deadline > 0.0 && projected > deadline) {
    // The driver notices at the adaptive deadline that the fetch has not
    // completed and duplicates the lagging slice to an alternate source
    // (another replica or the lineage recompute's fresh output) — first
    // responder wins, loser cancelled — if the tenant's budget allows.
    SlownessStats& st = slowness_->stats();
    const Bytes budget = so.hedge_budget_fraction * hb.fetched;
    if (hb.hedged + slice <= budget) {
      hedged = true;
      hb.hedged += slice;
      ++st.hedges_issued;
      st.hedge_bytes_issued += slice;
      // The duplicate is real traffic regardless of who wins.
      plan.bytes_net += slice;
      const double alt_done = std::max(
          plan.shuffle_read, deadline + cost_.net_latency + slice / eff_bw);
      if (alt_done < projected) {
        hedge_won = true;
        ++st.hedges_won;
        st.hedge_seconds_saved += projected - alt_done;
        st.hedge_bytes_wasted += slice;  // the cancelled slow fetch
        plan.shuffle_read = alt_done;
      } else {
        ++st.hedges_lost;
        st.hedge_bytes_wasted += slice;  // the cancelled hedge
        plan.shuffle_read = projected;
      }
    } else {
      ++st.hedges_budget_denied;
      plan.shuffle_read = projected;
    }
  } else {
    plan.shuffle_read = projected;
  }
  if (hedged && obs::Tracer::active(tracer_)) {
    obs::TraceEvent e;
    e.kind = obs::TraceKind::kHedgeIssued;
    e.t0 = e.t1 = sim_->now();
    e.job = task.job;
    e.stage = task.stage;
    e.tenant = stage.job->tenant;
    e.task_index = task.index;
    e.unit = task.unit_id;
    e.server = slow_host;
    e.bytes = slice;
    tracer_->emit(e);
    e.kind = obs::TraceKind::kHedgeResolved;
    e.code = hedge_won ? 1 : 0;
    tracer_->emit(e);
  }
}

// --- checkpointing & recovery -----------------------------------------------

void DagScheduler::checkpoint_now(const DatasetPtr& ds) {
  if (ds == nullptr) throw std::invalid_argument("checkpoint_now: null dataset");
  if (is_checkpointed(ds->id())) return;
  const Bytes bytes = checkpoint_cost(*ds);
  checkpointed_.emplace(ds->id(), bytes);
  checkpoint_bytes_ += bytes;
}

bool DagScheduler::is_checkpointed(DatasetId id) const noexcept {
  return checkpointed_.contains(id);
}

Bytes DagScheduler::checkpoint_cost(const Dataset& ds) const {
  return ds.total_bytes() * cost_.serialization_ratio;
}

double DagScheduler::recompute_delay(const Dataset& ds) const {
  // Max across partitions of the transform-only cost, inputs available.
  double worst = 0.0;
  const auto& bytes = ds.partition_bytes();
  for (std::size_t p = 0; p < bytes.size(); ++p) {
    worst = std::max(worst, recompute_delay_partition(ds, p));
  }
  return worst;
}

double DagScheduler::recompute_delay_partition(const Dataset& ds,
                                               std::size_t p) const {
  const auto& bytes = ds.partition_bytes();
  double d = 0.0;
  switch (ds.op()) {
    case Op::kSource:
      d = bytes[p] / cost_.disk_read_bw +
          cost_.cpu_seconds(OpKind::kSourceParse, bytes[p]);
      break;
    case Op::kMap:
    case Op::kFilter: {
      const Bytes in = ds.deps()[0].parent->partition_bytes()[p];
      d = cost_.cpu_seconds(
          ds.op() == Op::kMap ? OpKind::kMap : OpKind::kFilter, in);
      break;
    }
    case Op::kPartitionBy:
    case Op::kReduceByKey: {
      const auto& dep = ds.deps()[0];
      const Bytes in = dep.wide ? ds.shuffle_input_bytes(0)[p]
                                : dep.parent->partition_bytes()[p];
      if (dep.wide) {
        d += cost_.net_latency + in / std::min(cost_.net_bw, cost_.disk_read_bw);
        d += cost_.cpu_seconds(OpKind::kShuffleRead, in);
      }
      if (ds.op() == Op::kReduceByKey) {
        d += cost_.cpu_seconds(OpKind::kReduce, in);
      }
      break;
    }
    case Op::kCoGroup:
    case Op::kJoin:
    case Op::kUnion: {
      Bytes total_in = 0.0;
      for (std::size_t i = 0; i < ds.deps().size(); ++i) {
        const auto& dep = ds.deps()[i];
        const Bytes in = dep.wide ? ds.shuffle_input_bytes(i)[p]
                                  : dep.parent->partition_bytes()[p];
        if (dep.wide) {
          d += cost_.net_latency +
               in / std::min(cost_.net_bw, cost_.disk_read_bw);
          d += cost_.cpu_seconds(OpKind::kShuffleRead, in);
        }
        total_in += in;
      }
      const OpKind kind = ds.op() == Op::kCoGroup ? OpKind::kCoGroup
                          : ds.op() == Op::kJoin  ? OpKind::kJoin
                                                  : OpKind::kUnion;
      d += cost_.cpu_seconds(kind, total_in);
      break;
    }
  }
  return d;
}

void DagScheduler::release_lineage_refcounts(StageRun& stage) {
  for (const DatasetId id : stage.lineage_charged) {
    cluster_->bump_lineage_refcount(id, -1);
  }
  stage.lineage_charged.clear();
  if (advisor_) {
    for (const DatasetId id : stage.advisor_charged) {
      advisor_->on_stage_release(id, sim_->now());
    }
    stage.advisor_charged.clear();
  }
}

void DagScheduler::install_insert_filter() {
  if (insert_filter_installed_) return;
  insert_filter_installed_ = true;
  task_scheduler_.set_block_insert_filter(
      [this](const BlockId& id) { return !retired_.contains(id.dataset); });
}

Bytes DagScheduler::retire_dataset(const DatasetPtr& ds) {
  if (ds == nullptr) return 0.0;
  ds->uncache();
  Bytes dropped = 0.0;
  for (int p = 0; p < ds->num_partitions(); ++p) {
    const BlockId bid{ds->id(), p};
    for (const ServerId s : cluster_->cache_locations(bid)) {
      dropped += cluster_->server(s).storage().block_bytes(bid);
    }
    if (cluster_->remote_memory_enabled() && cluster_->remote_cached(bid)) {
      dropped += cluster_->remote_block_bytes(bid);
    }
    for (ServerId s = 0; s < cluster_->size(); ++s) {
      dropped += cluster_->disk_block_bytes(s, bid);
    }
    cluster_->remove_block_everywhere(bid);
  }
  retired_.insert(ds->id());
  install_insert_filter();
  return dropped;
}

double DagScheduler::recovery_chain_delay(const DatasetPtr& ds,
                                          int partition) const {
  // Recompute chain for one partition assuming no cached copies survive:
  // stops at checkpoints and shuffles, like plan_chain without a cache.
  if (is_checkpointed(ds->id())) {
    const Bytes ck = ds->partition_bytes()[static_cast<std::size_t>(partition)] *
                     cost_.serialization_ratio;
    return ck / cost_.disk_read_bw +
           cost_.cpu_seconds(OpKind::kSourceParse, ck);
  }
  double d = recompute_delay(*ds);
  double parent_worst = 0.0;
  for (const auto& dep : ds->deps()) {
    if (dep.wide) continue;  // anchored at persisted map outputs
    parent_worst =
        std::max(parent_worst, recovery_chain_delay(dep.parent, partition));
  }
  return d + parent_worst;
}

double DagScheduler::estimate_recovery_delay(const DatasetPtr& ds) const {
  double worst = 0.0;
  for (int p = 0; p < ds->num_partitions(); ++p) {
    worst = std::max(worst, recovery_chain_delay(ds, p));
  }
  return worst;
}

void DagScheduler::handle_server_failure(ServerId s) {
  cluster_->kill_server(s);
  on_executor_lost(s, 0.0);
}

bool DagScheduler::shuffle_materialized(const ShuffleKey& key) const {
  return shuffle_done_.contains(key);
}

}  // namespace stark
