#include "sched/task_scheduler.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "common/log.h"
#include "common/rng.h"

namespace stark {

TaskScheduler::TaskScheduler(sim::Simulation& sim, Cluster& cluster,
                             const CostModel& cost, Options options,
                             NsOfDatasetFn ns_of_dataset)
    : sim_(&sim),
      cluster_(&cluster),
      cost_(cost),
      options_(options),
      ns_of_dataset_(std::move(ns_of_dataset)),
      placement_rng_(options.seed),
      flaky_rng_(splitmix64(options.seed ^ 0x464c414bULL)) {}

void TaskScheduler::submit(TaskSetPtr ts) {
  if (ts == nullptr || ts->tasks.empty()) {
    throw std::invalid_argument("TaskScheduler::submit: empty task set");
  }
  auto set = std::make_shared<ActiveSet>();
  set->ts = std::move(ts);
  set->task_done_flags.assign(set->ts->tasks.size(), 0);
  set->task_speculated.assign(set->ts->tasks.size(), 0);
  set->attempts.assign(set->ts->tasks.size(), 0);
  set->runs_by_index.assign(set->ts->tasks.size(), {});
  for (int i = 0; i < static_cast<int>(set->ts->tasks.size()); ++i) {
    set->pending.push_back(i);
    if (!set->ts->tasks[static_cast<std::size_t>(i)].preferred.empty()) {
      set->has_preferences = true;
    }
  }
  set->locality_anchor = sim_->now();
  set->seq = next_set_seq_++;
  task_sets_.push_back(set);
  set->self = std::prev(task_sets_.end());
  by_job_stage_[job_stage_key(set->ts->job, set->ts->stage)].push_back(set);
  by_job_[set->ts->job].push_back(set);
  mark_ready(set);
  schedule();
}

void TaskScheduler::mark_ready(const std::shared_ptr<ActiveSet>& set) {
  if (set->in_ready || set->aborted || set->detached) return;
  ready_.emplace(set->seq, set);
  if (options_.fair_share) {
    const auto t = static_cast<std::size_t>(
        set->ts->tenant < 0 ? 0 : set->ts->tenant);
    if (ready_by_tenant_.size() <= t) ready_by_tenant_.resize(t + 1);
    ready_by_tenant_[t].emplace(set->seq, set);
  }
  set->in_ready = true;
}

void TaskScheduler::unready(ActiveSet& set) {
  if (!set.in_ready) return;
  ready_.erase(set.seq);
  if (options_.fair_share) {
    const auto t =
        static_cast<std::size_t>(set.ts->tenant < 0 ? 0 : set.ts->tenant);
    if (t < ready_by_tenant_.size()) ready_by_tenant_[t].erase(set.seq);
  }
  set.in_ready = false;
}

void TaskScheduler::set_tenant_weight(TenantId tenant, double weight) {
  if (tenant < 0 || weight <= 0.0) return;
  const auto idx = static_cast<std::size_t>(tenant);
  if (tenant_weight_.size() <= idx) tenant_weight_.resize(idx + 1, 1.0);
  tenant_weight_[idx] = weight;
}

int TaskScheduler::tenant_running_cores(TenantId tenant) const noexcept {
  const auto idx = static_cast<std::size_t>(tenant < 0 ? 0 : tenant);
  return idx < tenant_running_cores_.size() ? tenant_running_cores_[idx] : 0;
}

double TaskScheduler::weighted_share(TenantId tenant) const noexcept {
  const auto idx = static_cast<std::size_t>(tenant < 0 ? 0 : tenant);
  const double weight =
      idx < tenant_weight_.size() ? tenant_weight_[idx] : 1.0;
  const int cores =
      idx < tenant_running_cores_.size() ? tenant_running_cores_[idx] : 0;
  return static_cast<double>(cores) / weight;
}

void TaskScheduler::detach_set(const std::shared_ptr<ActiveSet>& set) {
  if (set->detached) return;
  set->detached = true;
  unready(*set);
  task_sets_.erase(set->self);
  const auto jit = by_job_stage_.find(job_stage_key(set->ts->job, set->ts->stage));
  if (jit != by_job_stage_.end()) {
    std::erase(jit->second, set);
    if (jit->second.empty()) by_job_stage_.erase(jit);
  }
  const auto bit = by_job_.find(set->ts->job);
  if (bit != by_job_.end()) {
    std::erase(bit->second, set);
    if (bit->second.empty()) by_job_.erase(bit);
  }
}

std::uint64_t TaskScheduler::collection_key(const BlockId& id) const {
  const std::string ns = ns_of_dataset_ ? ns_of_dataset_(id.dataset) : "";
  if (ns.empty()) {
    // Not part of a collection: the block is its own "collection
    // partition" and never aliases another dataset's.
    return (static_cast<std::uint64_t>(id.dataset) << 32) |
           static_cast<std::uint32_t>(id.partition);
  }
  return splitmix64(std::hash<std::string>()(ns)) ^
         static_cast<std::uint64_t>(id.partition);
}

void TaskScheduler::on_block_event(ServerId s, const BlockId& id,
                                   bool inserted) {
  auto& counts = contention_[s];
  const std::uint64_t key = collection_key(id);
  if (inserted) {
    ++counts[key];
  } else {
    const auto it = counts.find(key);
    if (it != counts.end() && --it->second <= 0) counts.erase(it);
  }
}

int TaskScheduler::unique_collection_partitions(ServerId s) const {
  const auto it = contention_.find(s);
  return it == contention_.end() ? 0 : static_cast<int>(it->second.size());
}

bool TaskScheduler::app_excluded(ServerId s) const {
  const auto it = app_excluded_until_.find(s);
  return it != app_excluded_until_.end() && sim_->now() + 1e-12 < it->second;
}

void TaskScheduler::expire_exclusions() {
  if (app_excluded_until_.empty()) return;
  for (auto it = app_excluded_until_.begin();
       it != app_excluded_until_.end();) {
    if (sim_->now() + 1e-12 >= it->second) {
      // Timed exclusion over: the executor rejoins with a clean slate.
      app_failures_.erase(it->first);
      if (stats_) ++stats_->executor_readmissions;
      app_excluded_mask_[static_cast<std::size_t>(it->first)] = 0;
      it = app_excluded_until_.erase(it);
    } else {
      arm_timer(it->second);
      ++it;
    }
  }
}

void TaskScheduler::rebuild_offer_cache() {
  // Both epochs are monotonic, so their sum changes whenever either does.
  // An admission fn without an epoch fn (tests wiring a bare callback)
  // conservatively rebuilds every sweep.
  const std::uint64_t key =
      cluster_->topology_epoch() + (admission_epoch_ ? admission_epoch_() : 0);
  const bool cacheable = !admission_ || static_cast<bool>(admission_epoch_);
  if (offer_cache_valid_ && cacheable && key == offer_cache_key_) return;
  offer_cache_key_ = key;
  offer_cache_valid_ = true;
  const int n = cluster_->size();
  offer_servers_.clear();
  offer_base_.assign(static_cast<std::size_t>(n), 0);
  probe_launch_failure_.assign(static_cast<std::size_t>(n), 0);
  for (ServerId s = 0; s < n; ++s) {
    const Server& srv = cluster_->server(s);
    if (!srv.alive()) {
      // A dead server the driver still believes alive: the NODE_LOCAL
      // pass "sends" it a launch RPC whose failure reveals the loss.
      if (launch_failed_ && (!admission_ || admission_(s))) {
        probe_launch_failure_[static_cast<std::size_t>(s)] = 1;
      }
      continue;
    }
    // A partitioned executor is skipped too: the launch RPC fails fast, so
    // the driver moves on even before declaring the executor lost.
    if (!srv.reachable()) continue;
    if (admission_ && !admission_(s)) continue;
    // App-wide exclusion is deliberately NOT cached: a verified read can
    // quarantine an executor mid-sweep (plan-time corruption detection
    // charges the excludeOnFailure budget), so offerable() checks it live.
    offer_base_[static_cast<std::size_t>(s)] = 1;
    offer_servers_.push_back(s);
  }
}

bool TaskScheduler::offerable(ServerId s, const ActiveSet& set,
                              int index) const {
  if (offer_base_[static_cast<std::size_t>(s)] == 0) return false;
  if (cluster_->server(s).free_cores() <= 0) return false;
  if (options_.faults.exclude_on_failure) {
    if (static_cast<std::size_t>(s) < app_excluded_mask_.size() &&
        app_excluded_mask_[static_cast<std::size_t>(s)] != 0) {
      return false;
    }
    if (set.stage_excluded.count(s) != 0) return false;
    const auto fit = set.failed_on.find(index);
    if (fit != set.failed_on.end()) {
      const auto sit = fit->second.find(s);
      if (sit != fit->second.end() &&
          sit->second >= options_.faults.max_task_attempts_per_executor) {
        return false;
      }
    }
  }
  return true;
}

void TaskScheduler::refresh_sweep_candidates() {
  sweep_candidates_.clear();
  for (ServerId s : offer_servers_) {
    if (cluster_->server(s).free_cores() > 0) sweep_candidates_.push_back(s);
  }
}

ServerId TaskScheduler::pick_remote_server(const ActiveSet& set, int index,
                                           ServerId exclude) {
  if (options_.mcf) {
    // Algorithm 1: ascending by unique collection partitions cached.
    // Believed-Degraded peers (fail-slow scorecards) rank behind every
    // healthy candidate regardless of contention — they still run work
    // when nothing else offers, or when due for a re-admission probe.
    ServerId best = kInvalidId;
    bool best_avoid = false;
    int best_contention = 0;
    int best_free = -1;
    for (ServerId s : sweep_candidates_) {
      if (s == exclude || !offerable(s, set, index)) continue;
      const bool avoid = slowness_ && slowness_->should_avoid(s, sim_->now());
      const Server& srv = cluster_->server(s);
      const int c = unique_collection_partitions(s);
      if (best == kInvalidId || (best_avoid && !avoid) ||
          (avoid == best_avoid &&
           (c < best_contention ||
            (c == best_contention && srv.free_cores() > best_free)))) {
        best = s;
        best_avoid = avoid;
        best_contention = c;
        best_free = srv.free_cores();
      }
    }
    return best;
  }
  // Stock behaviour: all remote workers are treated equally — Spark
  // effectively scatters tasks (and hence cached partitions) randomly.
  pick_scratch_.clear();
  for (ServerId s : sweep_candidates_) {
    if (s != exclude && offerable(s, set, index)) pick_scratch_.push_back(s);
  }
  if (pick_scratch_.empty()) return kInvalidId;
  if (slowness_) {
    // Drop believed-Degraded peers from the random draw unless every
    // candidate is degraded (then any of them beats not launching).
    const SimTime now = sim_->now();
    const auto keep = std::stable_partition(
        pick_scratch_.begin(), pick_scratch_.end(),
        [&](ServerId s) { return !slowness_->should_avoid(s, now); });
    if (keep != pick_scratch_.begin()) {
      pick_scratch_.erase(keep, pick_scratch_.end());
    }
  }
  return pick_scratch_[placement_rng_.next_below(pick_scratch_.size())];
}

void TaskScheduler::arm_timer(SimTime at) {
  if (timer_armed_ && timer_at_ <= at + 1e-12) return;
  timer_armed_ = true;
  timer_at_ = at;
  sim_->at(at, [this, at] {
    if (timer_armed_ && timer_at_ <= at + 1e-12) timer_armed_ = false;
    schedule();
  });
}

bool TaskScheduler::offer_to_set(const std::shared_ptr<ActiveSet>& set,
                                 int& free_cores,
                                 std::set<ServerId>& launch_failures) {
  bool launched = false;
  // NODE_LOCAL pass: launch every pending task that has a preferred
  // server with a free core.
  for (std::size_t scan = set->pending.size(); scan-- > 0;) {
    const int idx = set->pending.front();
    set->pending.pop_front();
    const TaskSpec& task = set->ts->tasks[static_cast<std::size_t>(idx)];
    ServerId local = kInvalidId;
    for (ServerId s : task.preferred) {
      if (probe_launch_failure_[static_cast<std::size_t>(s)] != 0) {
        launch_failures.insert(s);
      }
      // A peer believed compute-slow (cpu/disk Degraded) forfeits its
      // locality preference: fetching the data beats computing at a
      // fraction of the speed. A net-only-degraded peer keeps its local
      // tasks — they don't touch its NIC, and moving them would *create* a
      // fetch over the degraded link. The task falls through to the ANY
      // pass (periodic probes still land here so recovery is observable).
      if (slowness_ != nullptr &&
          slowness_->should_avoid_compute(s, sim_->now())) {
        continue;
      }
      if (offerable(s, *set, idx)) {
        local = s;
        break;
      }
    }
    if (local != kInvalidId) {
      launch(set, idx, local, /*node_local=*/true);
      launched = true;
      --free_cores;
    } else {
      set->pending.push_back(idx);  // keep for ANY pass / next round
    }
    if (free_cores == 0) break;
  }
  if (free_cores > 0 && !set->pending.empty()) {
    // ANY pass, gated by delay scheduling. Tasks with no preferred
    // executor at all sit at the ANY locality level from the start
    // (Spark's pendingTasksWithNoPrefs) and skip the gate.
    const SimTime allowed_at = set->locality_anchor + options_.locality_wait;
    const bool any_allowed =
        !set->has_preferences || sim_->now() + 1e-12 >= allowed_at;
    if (!any_allowed) arm_timer(allowed_at);
    for (std::size_t scan = set->pending.size();
         scan-- > 0 && free_cores > 0;) {
      const int idx = set->pending.front();
      set->pending.pop_front();
      if (!any_allowed &&
          !set->ts->tasks[static_cast<std::size_t>(idx)].preferred.empty()) {
        set->pending.push_back(idx);  // still inside its locality wait
        continue;
      }
      const ServerId s = pick_remote_server(*set, idx);
      if (s == kInvalidId) {
        // No executor the driver is willing to use for this task has a
        // free core right now (exclusions shrink the candidate set
        // per-task, so a sibling may still be placeable).
        set->pending.push_back(idx);
        continue;
      }
      launch(set, idx, s, /*node_local=*/false);
      launched = true;
      --free_cores;
    }
  }
  return launched;
}

void TaskScheduler::schedule() {
  if (in_schedule_) return;  // guard against re-entrant launches
  in_schedule_ = true;
  expire_exclusions();
  bool sweep_again = true;
  while (sweep_again) {
    sweep_again = false;
    rebuild_offer_cache();
    refresh_sweep_candidates();
    // Executors the driver believes alive whose process is gone: the pass
    // below "sends" them launch RPCs that fail, which is how a real driver
    // discovers a crash ahead of the heartbeat timeout. Reported after the
    // sweep (the callback tears into scheduler state), then re-swept.
    std::set<ServerId> launch_failures;
  bool progress = true;
  while (progress) {
    progress = false;
    // Under saturation this function fires on every completion with
    // thousands of queued task sets; bail out the moment the cluster has
    // no free slot instead of scanning every pending task.
    int free_cores = cluster_->total_free_cores();
    if (free_cores == 0) break;
    // Only sets with pending work are scanned: drained-but-running sets
    // (the common case under saturation) never appear in ready_, so a pass
    // costs O(ready sets), not O(all live sets).
    //
    // Backlog guard: with a deep ready queue, scanning every blocked set
    // per event is quadratic. After enough consecutive fruitless sets,
    // stop and revisit shortly — at that depth the queueing delay dwarfs
    // the revisit granularity anyway. The timer is only a backstop: any
    // completion that frees a core re-enters schedule() immediately.
    const bool deep_backlog = ready_.size() > options_.deep_backlog_threshold;
    int fruitless = 0;
    if (!options_.fair_share) {
      for (auto rit = ready_.begin(); rit != ready_.end() && free_cores > 0;) {
        if (deep_backlog && fruitless > options_.backlog_fruitless_limit) {
          arm_timer(sim_->now() + options_.backlog_revisit_interval);
          break;
        }
        ++fruitless;
        const std::shared_ptr<ActiveSet> set = rit->second;
        if (offer_to_set(set, free_cores, launch_failures)) {
          progress = true;
          fruitless = 0;
        }
        if (set->pending.empty()) {
          set->in_ready = false;
          rit = ready_.erase(rit);
        } else {
          ++rit;
        }
      }
    } else {
      // Weighted fair-share: each step offers the oldest ready set of the
      // tenant with the lowest running-cores/weight ratio (ties: lowest
      // tenant id). A tenant whose head set cannot place anything is
      // stepped past so its later sets still get offers this pass; the
      // outer progress loop restarts the scan from every tenant's oldest
      // set once anything launches.
      const int nt = static_cast<int>(ready_by_tenant_.size());
      std::vector<std::map<std::uint64_t, std::shared_ptr<ActiveSet>>::iterator>
          its(static_cast<std::size_t>(nt));
      for (int t = 0; t < nt; ++t) {
        its[static_cast<std::size_t>(t)] =
            ready_by_tenant_[static_cast<std::size_t>(t)].begin();
      }
      while (free_cores > 0) {
        if (deep_backlog && fruitless > options_.backlog_fruitless_limit) {
          arm_timer(sim_->now() + options_.backlog_revisit_interval);
          break;
        }
        int best = -1;
        double best_share = 0.0;
        for (int t = 0; t < nt; ++t) {
          if (its[static_cast<std::size_t>(t)] ==
              ready_by_tenant_[static_cast<std::size_t>(t)].end()) {
            continue;
          }
          const double share = weighted_share(t);
          if (best < 0 || share < best_share) {
            best = t;
            best_share = share;
          }
        }
        if (best < 0) break;  // no tenant has an unvisited ready set
        auto& bit = its[static_cast<std::size_t>(best)];
        ++fruitless;
        const std::shared_ptr<ActiveSet> set = bit->second;
        if (offer_to_set(set, free_cores, launch_failures)) {
          progress = true;
          fruitless = 0;
        }
        if (set->pending.empty()) {
          set->in_ready = false;
          bit = ready_by_tenant_[static_cast<std::size_t>(best)].erase(bit);
          ready_.erase(set->seq);
        } else {
          ++bit;
        }
      }
    }
  }
  if (!launch_failures.empty()) {
    for (const ServerId s : launch_failures) launch_failed_(s);
    sweep_again = true;  // losses changed the placement picture
  }
  }
  in_schedule_ = false;
}

void TaskScheduler::launch(const std::shared_ptr<ActiveSet>& set, int index,
                           ServerId server, bool node_local,
                           bool speculative) {
  Server& srv = cluster_->server(server);
  srv.acquire_core();
  if (node_local) set->locality_anchor = sim_->now();
  ++set->running;
  {
    const auto t = static_cast<std::size_t>(
        set->ts->tenant < 0 ? 0 : set->ts->tenant);
    if (tenant_running_cores_.size() <= t) {
      tenant_running_cores_.resize(t + 1, 0);
    }
    ++tenant_running_cores_[t];
  }

  const TaskSpec& task = set->ts->tasks[static_cast<std::size_t>(index)];
  // The driver serializes and ships tasks one at a time.
  const SimTime launch_time =
      std::max(sim_->now(), driver_free_at_) + cost_.driver_dispatch_per_task;
  driver_free_at_ = launch_time;

  TaskPlan plan = set->ts->plan(task, server);
  srv.add_working_set(plan.working_set);
  // Pin every cached block the plan reads (empty unless pinning is on):
  // the plan priced those reads as cache hits, so the eviction policy must
  // not victimize them while the task runs.
  for (const BlockId& id : plan.blocks_referenced) {
    cluster_->pin_block(server, id);
  }
  if (plan.bytes_net > 0.0) ++active_net_flows_;
  if (plan.bytes_disk > 0.0 || plan.bytes_written > 0.0) ++active_disk_flows_;
  const double overhead = cost_.task_launch_overhead;

  RunningTask run;
  run.set = set;
  run.index = index;
  run.server = server;
  run.server_generation = srv.generation();
  run.speculative = speculative;
  if (speculative) ++speculative_launches_;
  run.fetch_failure = plan.fetch_failure;

  // A believed-Degraded server receiving work is a re-admission probe:
  // restart its probe timer so it gets one task per interval, not a flood.
  if (slowness_) slowness_->note_probe(server, sim_->now());

  // Work out whether (and when) this run dies instead of finishing.
  SimTime finish;
  if (run.fetch_failure.has_value()) {
    // The reduce task burns its connection-retry budget against the lost
    // map-output host, then raises FetchFailed. With fail-slow scorecards
    // active the fixed constant is replaced by the adaptive deadline
    // derived from the observed fetch distribution (once warmed up).
    double wait = options_.faults.fetch_fail_seconds;
    if (slowness_ != nullptr) {
      const double adaptive = slowness_->fetch_deadline();
      if (adaptive > 0.0) wait = adaptive;
    }
    finish = launch_time + overhead + wait;
  } else if (flaky_probability_ > 0.0 &&
             flaky_rng_.next_double() < flaky_probability_) {
    // Gray failure: the task crashes partway through its work.
    run.flaky_failure = true;
    finish = launch_time + overhead +
             flaky_rng_.next_double() * plan.work_seconds();
  } else {
    finish = launch_time + overhead + plan.work_seconds();
  }

  run.plan = std::move(plan);
  run.metrics.server = server;
  run.metrics.node_local = node_local;
  run.metrics.submit_time = sim_->now();
  run.metrics.launch_time = launch_time;
  run.metrics.finish_time = finish;
  run.metrics.cpu = run.plan.cpu;
  run.metrics.deserialize = run.plan.deserialize;
  run.metrics.gc = run.plan.gc;
  run.metrics.shuffle_read = run.plan.shuffle_read;
  run.metrics.disk = run.plan.disk;
  run.metrics.remote_read = run.plan.remote;
  run.metrics.overhead = overhead + cost_.driver_dispatch_per_task;
  run.metrics.bytes_from_cache = run.plan.bytes_cache;
  run.metrics.bytes_from_net = run.plan.bytes_net;
  run.metrics.bytes_from_disk = run.plan.bytes_disk;
  run.metrics.bytes_from_remote = run.plan.bytes_remote;
  run.metrics.bytes_written = run.plan.bytes_written;

  if (obs::Tracer::active(tracer_)) {
    obs::TraceEvent e;
    e.kind = obs::TraceKind::kTaskLaunch;
    e.t0 = e.t1 = launch_time;
    e.job = task.job;
    e.stage = task.stage;
    e.tenant = set->ts->tenant;
    e.task_index = index;
    e.unit = task.unit_id;
    e.attempt = set->attempts[static_cast<std::size_t>(index)];
    e.server = server;
    if (node_local) e.flags |= obs::kFlagNodeLocal;
    if (speculative) e.flags |= obs::kFlagSpeculative;
    tracer_->emit(e);
  }

  const std::uint64_t run_id = next_run_id_++;
  if (run.fetch_failure.has_value()) {
    run.event = sim_->at(
        finish, [this, run_id] { fail(run_id, TaskFailureKind::kFetchFailed); });
  } else if (run.flaky_failure) {
    run.event = sim_->at(
        finish, [this, run_id] { fail(run_id, TaskFailureKind::kTaskError); });
  } else {
    run.event = sim_->at(finish, [this, run_id] { complete(run_id); });
  }
  by_server_[server].insert(run_id);
  set->runs_by_index[static_cast<std::size_t>(index)].push_back(run_id);
  running_.emplace(run_id, std::move(run));
}

void TaskScheduler::release_run_resources(const RunningTask& run,
                                          std::uint64_t run_id) {
  Server& srv = cluster_->server(run.server);
  // Only the incarnation the task was launched on holds the core; a dead
  // or restarted server already reset its slots.
  if (srv.alive() && srv.generation() == run.server_generation) {
    srv.release_core();
    srv.remove_working_set(run.plan.working_set);
  }
  // Unpin the plan's referenced blocks. Safe unconditionally: a killed or
  // restarted incarnation cleared its store (pins died with the entries),
  // and unpinning an absent block is a no-op.
  for (const BlockId& id : run.plan.blocks_referenced) {
    cluster_->unpin_block(run.server, id);
  }
  if (run.plan.bytes_net > 0.0) --active_net_flows_;
  if (run.plan.bytes_disk > 0.0 || run.plan.bytes_written > 0.0) {
    --active_disk_flows_;
  }
  --run.set->running;
  {
    const auto t = static_cast<std::size_t>(
        run.set->ts->tenant < 0 ? 0 : run.set->ts->tenant);
    if (t < tenant_running_cores_.size()) --tenant_running_cores_[t];
  }
  auto& runs = run.set->runs_by_index[static_cast<std::size_t>(run.index)];
  std::erase(runs, run_id);
}

void TaskScheduler::discard_run(std::uint64_t run_id) {
  const auto it = running_.find(run_id);
  if (it == running_.end()) return;
  RunningTask run = std::move(it->second);
  running_.erase(it);
  by_server_[run.server].erase(run_id);
  sim_->cancel(run.event);
  release_run_resources(run, run_id);
}

void TaskScheduler::maybe_speculate(const std::shared_ptr<ActiveSet>& set) {
  if (!options_.speculation || speculation_suspended_) return;
  const std::size_t n = set->ts->tasks.size();
  if (set->finished_durations.size() <
      static_cast<std::size_t>(options_.speculation_quantile *
                               static_cast<double>(n))) {
    return;
  }
  std::vector<double> sorted = set->finished_durations;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  const double median = sorted[sorted.size() / 2];
  const double threshold = options_.speculation_multiplier * median;
  rebuild_offer_cache();  // pick_remote_server below reads the offer cache
  refresh_sweep_candidates();
  // Snapshot: launching mutates runs_by_index.
  std::vector<std::pair<int, std::uint64_t>> candidates;
  for (std::size_t index = 0; index < set->runs_by_index.size(); ++index) {
    const auto& runs = set->runs_by_index[index];
    if (set->task_done_flags[index] || set->task_speculated[index] ||
        runs.size() != 1) {
      continue;
    }
    candidates.emplace_back(static_cast<int>(index), runs.front());
  }
  for (const auto& [index, run_id] : candidates) {
    const auto rit = running_.find(run_id);
    if (rit == running_.end()) continue;
    const auto& m = rit->second.metrics;
    if (m.finish_time - m.launch_time <= threshold) continue;
    if (m.finish_time - sim_->now() <= 0.0) continue;  // about to finish
    const ServerId s =
        pick_remote_server(*set, index, /*exclude=*/rit->second.server);
    if (s == kInvalidId) continue;
    set->task_speculated[static_cast<std::size_t>(index)] = 1;
    launch(set, index, s, /*node_local=*/false, /*speculative=*/true);
  }
}

void TaskScheduler::finish_set_if_done(const std::shared_ptr<ActiveSet>& set) {
  if (set->aborted) return;
  if (set->pending.empty() && set->parked.empty() &&
      set->backoff_pending == 0 && set->running == 0 &&
      set->finished == static_cast<int>(set->ts->tasks.size())) {
    detach_set(set);
    if (set->ts->all_done) set->ts->all_done();
  }
}

void TaskScheduler::complete(std::uint64_t run_id) {
  const auto it = running_.find(run_id);
  if (it == running_.end()) return;
  {
    const RunningTask& r = it->second;
    const Server& srv = cluster_->server(r.server);
    if (!srv.alive() || srv.generation() != r.server_generation) {
      // Zombie: the incarnation that ran this task is gone but the driver
      // has not detected it yet. handle_server_failure() will clean up.
      return;
    }
    if (!srv.reachable()) {
      // The task finished, but the result cannot reach the driver. Deliver
      // it if the partition heals; requeue it if detection fires first.
      deferred_[r.server].push_back(run_id);
      return;
    }
  }
  RunningTask run = std::move(it->second);
  running_.erase(it);
  by_server_[run.server].erase(run_id);

  Server& srv = cluster_->server(run.server);
  srv.add_busy_seconds(run.metrics.duration());
  release_run_resources(run, run_id);

  auto& set = run.set;
  if (set->task_done_flags[static_cast<std::size_t>(run.index)]) {
    // A copy that lost the race but whose cancellation raced the event.
    schedule();
    return;
  }
  // This copy wins; kill any sibling still running.
  set->task_done_flags[static_cast<std::size_t>(run.index)] = 1;
  if (run.speculative) ++speculative_wins_;
  const auto runs_snapshot =
      set->runs_by_index[static_cast<std::size_t>(run.index)];
  for (const std::uint64_t sibling : runs_snapshot) discard_run(sibling);
  set->runs_by_index[static_cast<std::size_t>(run.index)].clear();

  for (const auto& block : run.plan.blocks_to_cache) {
    // The plan predates completion; a dataset freed in between must not
    // have its recomputed partitions resurrected into a dead cache.
    if (block_insert_filter_ && !block_insert_filter_(block.id)) continue;
    cluster_->insert_block(run.server, block.id, block.bytes,
                           block.spill_on_evict, block.recompute_cost,
                           set->ts->tenant);
  }

  ++set->finished;
  ++tasks_completed_;
  set->finished_durations.push_back(run.metrics.duration());
  if (slowness_ && run.plan.slowness.has_value()) {
    // Feed the fail-slow scorecards from the winning copy only, so a
    // cancelled speculative sibling never double-reports an observation.
    const TaskPlan::SlownessObs& so = *run.plan.slowness;
    const SimTime now = sim_->now();
    if (run.plan.cpu > 0.0) {
      slowness_->observe(run.server, SlowResource::kCpu, so.cpu_ratio, now);
    }
    if (run.plan.bytes_disk > 0.0 || run.plan.bytes_written > 0.0) {
      slowness_->observe(run.server, SlowResource::kDisk, so.disk_ratio, now);
    }
    for (const auto& [source, ratio] : so.source_net) {
      slowness_->observe(source, SlowResource::kNet, ratio, now);
    }
    if (so.fetch_seconds > 0.0) {
      slowness_->observe_fetch_seconds(so.fetch_seconds);
    }
  }
  const TaskSpec& task = set->ts->tasks[static_cast<std::size_t>(run.index)];
  if (obs::Tracer::active(tracer_)) {
    // Exactly one finish span per logical task: the winning copy.
    obs::TraceEvent e;
    e.kind = obs::TraceKind::kTaskFinish;
    e.t0 = run.metrics.launch_time;
    e.t1 = run.metrics.finish_time;
    e.job = task.job;
    e.stage = task.stage;
    e.tenant = set->ts->tenant;
    e.task_index = run.index;
    e.unit = task.unit_id;
    e.attempt = set->attempts[static_cast<std::size_t>(run.index)];
    e.server = run.server;
    e.flags |= obs::kFlagCompleted;
    if (run.metrics.node_local) e.flags |= obs::kFlagNodeLocal;
    if (run.speculative) e.flags |= obs::kFlagSpeculative;
    e.bytes = run.metrics.bytes_from_cache + run.metrics.bytes_from_net +
              run.metrics.bytes_from_disk + run.metrics.bytes_from_remote;
    e.phases.sched_delay = run.metrics.queue_delay();
    e.phases.deserialize = run.metrics.deserialize;
    e.phases.compute = run.metrics.cpu - run.metrics.deserialize;
    e.phases.gc = run.metrics.gc;
    e.phases.shuffle_read = run.metrics.shuffle_read;
    e.phases.disk = run.metrics.disk;
    e.phases.remote_read = run.metrics.remote_read;
    e.phases.overhead = run.metrics.overhead;
    tracer_->emit(e);
  }
  if (set->ts->task_done) set->ts->task_done(task, run.metrics);
  finish_set_if_done(set);
  if (!set->aborted && set->finished < static_cast<int>(set->ts->tasks.size())) {
    maybe_speculate(set);
  }
  schedule();
}

void TaskScheduler::record_task_error(const std::shared_ptr<ActiveSet>& set,
                                      int index, ServerId server) {
  if (!options_.faults.exclude_on_failure) return;
  // Per-task: never retry this task on an executor it failed on (once
  // max_task_attempts_per_executor is used up).
  ++set->failed_on[index][server];
  // Per-stage: enough failures within one task set exclude the executor
  // for the rest of the stage.
  if (++set->stage_failures[server] >=
      options_.faults.max_failures_per_executor_stage) {
    set->stage_excluded.insert(server);
  }
  // Application-wide: repeated failures across stages exclude the executor
  // cluster-wide for exclude_timeout seconds.
  charge_app_failure(server);
}

void TaskScheduler::charge_app_failure(ServerId server) {
  if (++app_failures_[server] >= options_.faults.max_failures_per_executor &&
      app_excluded_until_.count(server) == 0) {
    app_excluded_until_[server] =
        sim_->now() + options_.faults.exclude_timeout;
    if (app_excluded_mask_.size() < static_cast<std::size_t>(cluster_->size())) {
      app_excluded_mask_.resize(static_cast<std::size_t>(cluster_->size()), 0);
    }
    app_excluded_mask_[static_cast<std::size_t>(server)] = 1;
    ++app_exclusions_;
    if (stats_) ++stats_->executor_exclusions;
    arm_timer(app_excluded_until_[server]);
    STARK_LOG_DEBUG("excluded executor %d until %.3f", server,
                    app_excluded_until_[server]);
  }
}

void TaskScheduler::record_integrity_failure(ServerId server) {
  // Quarantine: a corruption detected on this executor's storage counts
  // against its application-wide excludeOnFailure budget. There is no
  // failed task to charge (the read was rescued at plan time), so the
  // per-task and per-stage counters are left alone.
  if (!options_.faults.exclude_on_failure ||
      !options_.faults.quarantine_on_corruption) {
    return;
  }
  charge_app_failure(server);
}

void TaskScheduler::emit_retry(const ActiveSet& set, int index) {
  if (!obs::Tracer::active(tracer_)) return;
  obs::TraceEvent e;
  e.kind = obs::TraceKind::kTaskRetry;
  e.t0 = e.t1 = sim_->now();
  e.job = set.ts->job;
  e.stage = set.ts->stage;
  e.task_index = index;
  e.unit = set.ts->tasks[static_cast<std::size_t>(index)].unit_id;
  e.attempt = set.attempts[static_cast<std::size_t>(index)];
  tracer_->emit(e);
}

void TaskScheduler::requeue_with_backoff(const std::shared_ptr<ActiveSet>& set,
                                         int index) {
  const int attempts = set->attempts[static_cast<std::size_t>(index)];
  const double delay =
      std::min(options_.faults.retry_backoff *
                   std::pow(2.0, std::max(0, attempts - 1)),
               options_.faults.retry_backoff_max);
  if (stats_) ++stats_->task_retries;
  emit_retry(*set, index);
  ++set->backoff_pending;
  sim_->after(delay, [this, set, index] {
    --set->backoff_pending;
    if (set->aborted ||
        set->task_done_flags[static_cast<std::size_t>(index)]) {
      return;
    }
    set->task_speculated[static_cast<std::size_t>(index)] = 0;
    set->pending.push_back(index);
    mark_ready(set);
    schedule();
  });
}

void TaskScheduler::abort_set(const std::shared_ptr<ActiveSet>& set,
                              const std::string& reason) {
  if (set->aborted) return;
  set->aborted = true;
  detach_set(set);
  // Discard every copy still in flight, in run-id (launch) order.
  std::vector<std::uint64_t> run_ids;
  for (const auto& runs : set->runs_by_index) {
    run_ids.insert(run_ids.end(), runs.begin(), runs.end());
  }
  std::sort(run_ids.begin(), run_ids.end());
  for (const std::uint64_t id : run_ids) discard_run(id);
  set->pending.clear();
  set->parked.clear();
  STARK_LOG_INFO("aborting task set (job %d stage %d): %s", set->ts->job,
                 set->ts->stage, reason.c_str());
  if (set->ts->on_abort) set->ts->on_abort(reason);
}

void TaskScheduler::fail(std::uint64_t run_id, TaskFailureKind kind) {
  const auto it = running_.find(run_id);
  if (it == running_.end()) return;
  {
    const RunningTask& r = it->second;
    const Server& srv = cluster_->server(r.server);
    if (kind != TaskFailureKind::kExecutorLost &&
        (!srv.alive() || srv.generation() != r.server_generation)) {
      // The executor died before the task could even fail; the loss path
      // owns the cleanup.
      return;
    }
  }
  RunningTask run = std::move(it->second);
  running_.erase(it);
  by_server_[run.server].erase(run_id);
  sim_->cancel(run.event);
  release_run_resources(run, run_id);

  auto& set = run.set;
  if (set->aborted ||
      set->task_done_flags[static_cast<std::size_t>(run.index)]) {
    schedule();
    return;
  }
  if (stats_) ++stats_->task_failures;
  // Fetch failures count against the *stage* (resubmission attempts), not
  // the task's own retry budget — mirroring Spark's TaskSetManager.
  if (kind != TaskFailureKind::kFetchFailed) {
    ++set->attempts[static_cast<std::size_t>(run.index)];
  }
  if (kind == TaskFailureKind::kTaskError) {
    record_task_error(set, run.index, run.server);
  }
  if (obs::Tracer::active(tracer_)) {
    obs::TraceEvent e;
    e.kind = obs::TraceKind::kTaskFail;
    e.code = static_cast<std::int16_t>(kind);
    e.t0 = e.t1 = sim_->now();
    e.job = set->ts->job;
    e.stage = set->ts->stage;
    e.task_index = run.index;
    e.unit = set->ts->tasks[static_cast<std::size_t>(run.index)].unit_id;
    e.attempt = set->attempts[static_cast<std::size_t>(run.index)];
    e.server = run.server;
    if (run.speculative) e.flags |= obs::kFlagSpeculative;
    tracer_->emit(e);
  }

  const auto& siblings =
      set->runs_by_index[static_cast<std::size_t>(run.index)];
  if (!siblings.empty()) {
    // A speculative copy is still running; let it race. The task_failed
    // notification is deliberately skipped: its driver-side accounting
    // (fetch-failure counters, stage-attempt bumps, shuffle rebuilds) must
    // fire once per *logical* failure, and the surviving copy's outcome
    // decides whether the stage actually failed. Notifying here too made
    // an original + speculative pair that both hit FetchFailed charge the
    // failure wave twice.
    schedule();
    return;
  }
  TaskFailureAction action = TaskFailureAction::kRetry;
  if (set->ts->task_failed) {
    TaskFailure failure;
    failure.kind = kind;
    failure.server = run.server;
    failure.attempts = set->attempts[static_cast<std::size_t>(run.index)];
    if (run.fetch_failure.has_value()) {
      failure.shuffle = run.fetch_failure->shuffle;
      failure.fetch_source = run.fetch_failure->source;
    }
    const TaskSpec& task =
        set->ts->tasks[static_cast<std::size_t>(run.index)];
    action = set->ts->task_failed(task, failure);
  }
  if (set->aborted) {  // the callback may have aborted the whole job
    schedule();
    return;
  }
  if (action == TaskFailureAction::kPark) {
    // Zombie the whole set, like Spark does on FetchFailed: launching the
    // siblings now would only replay the same doomed fetch. Everything not
    // yet finished waits for the unpark.
    set->parked.insert(run.index);
    for (const int idx : set->pending) set->parked.insert(idx);
    set->pending.clear();
    unready(*set);
    schedule();
    return;
  }
  const int attempts = set->attempts[static_cast<std::size_t>(run.index)];
  if (attempts >= options_.faults.max_task_failures) {
    abort_set(set, "task " + std::to_string(run.index) + " failed " +
                       std::to_string(attempts) + " times (max " +
                       std::to_string(options_.faults.max_task_failures) +
                       ")");
    schedule();
    return;
  }
  // Unschedulable task: it already failed on every live executor it is
  // still allowed to run on. Spark aborts rather than spin forever.
  if (options_.faults.exclude_on_failure) {
    bool placeable = false;
    for (ServerId s : cluster_->alive_servers()) {
      if (set->stage_excluded.count(s) != 0) continue;
      const auto fit = set->failed_on.find(run.index);
      if (fit != set->failed_on.end()) {
        const auto sit = fit->second.find(s);
        if (sit != fit->second.end() &&
            sit->second >= options_.faults.max_task_attempts_per_executor) {
          continue;
        }
      }
      placeable = true;
      break;
    }
    if (!placeable) {
      abort_set(set, "task " + std::to_string(run.index) +
                         " cannot be scheduled on any live executor "
                         "(excludeOnFailure)");
      schedule();
      return;
    }
  }
  if (kind == TaskFailureKind::kExecutorLost) {
    // Executor loss requeues immediately: the task did nothing wrong.
    set->task_speculated[static_cast<std::size_t>(run.index)] = 0;
    set->pending.push_back(run.index);
    mark_ready(set);
    if (stats_) ++stats_->task_retries;
    emit_retry(*set, run.index);
  } else {
    requeue_with_backoff(set, run.index);
  }
  schedule();
}

void TaskScheduler::handle_server_failure(ServerId s) {
  const auto it = by_server_.find(s);
  if (it != by_server_.end()) {
    // Fail every run the driver believed was on s — including results that
    // finished behind a partition but were never delivered.
    const auto run_ids = it->second;
    std::vector<std::uint64_t> ordered(run_ids.begin(), run_ids.end());
    std::sort(ordered.begin(), ordered.end());
    for (std::uint64_t run_id : ordered) {
      fail(run_id, TaskFailureKind::kExecutorLost);
    }
    by_server_.erase(s);
  }
  deferred_.erase(s);
  contention_.erase(s);
  schedule();
}

void TaskScheduler::on_server_healed(ServerId s) {
  const auto it = deferred_.find(s);
  if (it == deferred_.end()) {
    schedule();
    return;
  }
  std::vector<std::uint64_t> run_ids = std::move(it->second);
  deferred_.erase(it);
  for (std::uint64_t run_id : run_ids) {
    const auto rit = running_.find(run_id);
    if (rit == running_.end()) continue;
    // The result reaches the driver only now.
    rit->second.metrics.finish_time = sim_->now();
    complete(run_id);
  }
  schedule();
}

void TaskScheduler::unpark(JobId job, StageId stage) {
  const auto it = by_job_stage_.find(job_stage_key(job, stage));
  if (it != by_job_stage_.end()) {
    // Matching sets in submission order; parked indices requeue sorted so
    // the offer order is independent of how the parked hash set iterates.
    for (const auto& set : it->second) {
      if (set->parked.empty()) continue;
      std::vector<int> indices(set->parked.begin(), set->parked.end());
      std::sort(indices.begin(), indices.end());
      set->parked.clear();
      for (int idx : indices) set->pending.push_back(idx);
      mark_ready(set);
    }
  }
  schedule();
}

void TaskScheduler::cancel_job(JobId job) {
  std::vector<std::shared_ptr<ActiveSet>> doomed;
  const auto it = by_job_.find(job);
  if (it != by_job_.end()) doomed = it->second;  // copy: detach mutates it
  for (const auto& set : doomed) {
    set->aborted = true;
    detach_set(set);
    std::vector<std::uint64_t> run_ids;
    for (const auto& runs : set->runs_by_index) {
      run_ids.insert(run_ids.end(), runs.begin(), runs.end());
    }
    std::sort(run_ids.begin(), run_ids.end());
    for (const std::uint64_t id : run_ids) discard_run(id);
    set->pending.clear();
    set->parked.clear();
  }
  schedule();
}

}  // namespace stark
