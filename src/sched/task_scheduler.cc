#include "sched/task_scheduler.h"

#include <algorithm>
#include <stdexcept>

#include "common/log.h"
#include "common/rng.h"

namespace stark {

TaskScheduler::TaskScheduler(sim::Simulation& sim, Cluster& cluster,
                             const CostModel& cost, Options options,
                             NsOfDatasetFn ns_of_dataset)
    : sim_(&sim),
      cluster_(&cluster),
      cost_(cost),
      options_(options),
      ns_of_dataset_(std::move(ns_of_dataset)),
      placement_rng_(options.seed) {}

void TaskScheduler::submit(TaskSetPtr ts) {
  if (ts == nullptr || ts->tasks.empty()) {
    throw std::invalid_argument("TaskScheduler::submit: empty task set");
  }
  auto set = std::make_shared<ActiveSet>();
  set->ts = std::move(ts);
  set->task_done_flags.assign(set->ts->tasks.size(), 0);
  set->task_speculated.assign(set->ts->tasks.size(), 0);
  for (int i = 0; i < static_cast<int>(set->ts->tasks.size()); ++i) {
    set->pending.push_back(i);
    if (!set->ts->tasks[static_cast<std::size_t>(i)].preferred.empty()) {
      set->has_preferences = true;
    }
  }
  set->locality_anchor = sim_->now();
  task_sets_.push_back(std::move(set));
  schedule();
}

std::uint64_t TaskScheduler::collection_key(const BlockId& id) const {
  const std::string ns = ns_of_dataset_ ? ns_of_dataset_(id.dataset) : "";
  if (ns.empty()) {
    // Not part of a collection: the block is its own "collection
    // partition" and never aliases another dataset's.
    return (static_cast<std::uint64_t>(id.dataset) << 32) |
           static_cast<std::uint32_t>(id.partition);
  }
  return splitmix64(std::hash<std::string>()(ns)) ^
         static_cast<std::uint64_t>(id.partition);
}

void TaskScheduler::on_block_event(ServerId s, const BlockId& id,
                                   bool inserted) {
  auto& counts = contention_[s];
  const std::uint64_t key = collection_key(id);
  if (inserted) {
    ++counts[key];
  } else {
    const auto it = counts.find(key);
    if (it != counts.end() && --it->second <= 0) counts.erase(it);
  }
}

int TaskScheduler::unique_collection_partitions(ServerId s) const {
  const auto it = contention_.find(s);
  return it == contention_.end() ? 0 : static_cast<int>(it->second.size());
}

ServerId TaskScheduler::pick_remote_server() {
  if (options_.mcf) {
    // Algorithm 1: ascending by unique collection partitions cached.
    ServerId best = kInvalidId;
    int best_contention = 0;
    int best_free = -1;
    for (ServerId s : cluster_->alive_servers()) {
      const Server& srv = cluster_->server(s);
      if (srv.free_cores() <= 0) continue;
      const int c = unique_collection_partitions(s);
      if (best == kInvalidId || c < best_contention ||
          (c == best_contention && srv.free_cores() > best_free)) {
        best = s;
        best_contention = c;
        best_free = srv.free_cores();
      }
    }
    return best;
  }
  // Stock behaviour: all remote workers are treated equally — Spark
  // effectively scatters tasks (and hence cached partitions) randomly.
  std::vector<ServerId> candidates;
  for (ServerId s : cluster_->alive_servers()) {
    if (cluster_->server(s).free_cores() > 0) candidates.push_back(s);
  }
  if (candidates.empty()) return kInvalidId;
  return candidates[placement_rng_.next_below(candidates.size())];
}

void TaskScheduler::arm_timer(SimTime at) {
  if (timer_armed_ && timer_at_ <= at + 1e-12) return;
  timer_armed_ = true;
  timer_at_ = at;
  sim_->at(at, [this, at] {
    if (timer_armed_ && timer_at_ <= at + 1e-12) timer_armed_ = false;
    schedule();
  });
}

void TaskScheduler::schedule() {
  if (in_schedule_) return;  // guard against re-entrant launches
  in_schedule_ = true;
  bool progress = true;
  while (progress) {
    progress = false;
    // Under saturation this function fires on every completion with
    // thousands of queued task sets; bail out the moment the cluster has
    // no free slot instead of scanning every pending task.
    int free_cores = cluster_->total_free_cores();
    if (free_cores == 0) break;
    // Backlog guard: with a deep FIFO, scanning every blocked set per event
    // is quadratic. After enough consecutive fruitless sets, stop and
    // revisit shortly — at that depth the queueing delay dwarfs the revisit
    // granularity anyway.
    const bool deep_backlog = task_sets_.size() > 256;
    int fruitless = 0;
    for (auto& set : task_sets_) {
      if (free_cores == 0) break;
      if (deep_backlog && fruitless > 128) {
        arm_timer(sim_->now() + 0.2);
        break;
      }
      ++fruitless;
      if (set->pending.empty()) continue;
      // NODE_LOCAL pass: launch every pending task that has a preferred
      // server with a free core.
      for (std::size_t scan = set->pending.size(); scan-- > 0;) {
        const int idx = set->pending.front();
        set->pending.pop_front();
        const TaskSpec& task = set->ts->tasks[static_cast<std::size_t>(idx)];
        ServerId local = kInvalidId;
        for (ServerId s : task.preferred) {
          const Server& srv = cluster_->server(s);
          if (srv.alive() && srv.free_cores() > 0) {
            local = s;
            break;
          }
        }
        if (local != kInvalidId) {
          launch(set, idx, local, /*node_local=*/true);
          progress = true;
          fruitless = 0;
          --free_cores;
        } else {
          set->pending.push_back(idx);  // keep for ANY pass / next round
        }
        if (free_cores == 0) break;
      }
      if (free_cores == 0) break;
      if (set->pending.empty()) continue;
      // ANY pass, gated by delay scheduling.
      const SimTime allowed_at = set->locality_anchor + options_.locality_wait;
      const bool any_allowed =
          !set->has_preferences || sim_->now() + 1e-12 >= allowed_at;
      if (!any_allowed) {
        arm_timer(allowed_at);
        continue;
      }
      while (!set->pending.empty() && free_cores > 0) {
        const ServerId s = pick_remote_server();
        if (s == kInvalidId) break;  // no free cores anywhere
        const int idx = set->pending.front();
        set->pending.pop_front();
        launch(set, idx, s, /*node_local=*/false);
        progress = true;
        fruitless = 0;
        --free_cores;
      }
    }
  }
  in_schedule_ = false;
}

void TaskScheduler::launch(const std::shared_ptr<ActiveSet>& set, int index,
                           ServerId server, bool node_local,
                           bool speculative) {
  Server& srv = cluster_->server(server);
  srv.acquire_core();
  if (node_local) set->locality_anchor = sim_->now();
  ++set->running;

  const TaskSpec& task = set->ts->tasks[static_cast<std::size_t>(index)];
  // The driver serializes and ships tasks one at a time.
  const SimTime launch_time =
      std::max(sim_->now(), driver_free_at_) + cost_.driver_dispatch_per_task;
  driver_free_at_ = launch_time;

  TaskPlan plan = set->ts->plan(task, server);
  srv.add_working_set(plan.working_set);
  if (plan.bytes_net > 0.0) ++active_net_flows_;
  if (plan.bytes_disk > 0.0 || plan.bytes_written > 0.0) ++active_disk_flows_;
  const double overhead = cost_.task_launch_overhead;
  const SimTime finish = launch_time + overhead + plan.work_seconds();

  RunningTask run;
  run.set = set;
  run.index = index;
  run.server = server;
  run.speculative = speculative;
  if (speculative) ++speculative_launches_;
  run.plan = std::move(plan);
  run.metrics.server = server;
  run.metrics.node_local = node_local;
  run.metrics.submit_time = sim_->now();
  run.metrics.launch_time = launch_time;
  run.metrics.finish_time = finish;
  run.metrics.cpu = run.plan.cpu;
  run.metrics.gc = run.plan.gc;
  run.metrics.shuffle_read = run.plan.shuffle_read;
  run.metrics.disk = run.plan.disk;
  run.metrics.overhead = overhead + cost_.driver_dispatch_per_task;
  run.metrics.bytes_from_cache = run.plan.bytes_cache;
  run.metrics.bytes_from_net = run.plan.bytes_net;
  run.metrics.bytes_from_disk = run.plan.bytes_disk;
  run.metrics.bytes_written = run.plan.bytes_written;

  const std::uint64_t run_id = next_run_id_++;
  run.event = sim_->at(finish, [this, run_id] { complete(run_id); });
  by_server_[server].insert(run_id);
  set->runs_by_index[index].push_back(run_id);
  running_.emplace(run_id, std::move(run));
}

void TaskScheduler::discard_run(std::uint64_t run_id) {
  const auto it = running_.find(run_id);
  if (it == running_.end()) return;
  RunningTask run = std::move(it->second);
  running_.erase(it);
  by_server_[run.server].erase(run_id);
  sim_->cancel(run.event);
  Server& srv = cluster_->server(run.server);
  if (srv.alive()) {
    srv.release_core();
    srv.remove_working_set(run.plan.working_set);
  }
  if (run.plan.bytes_net > 0.0) --active_net_flows_;
  if (run.plan.bytes_disk > 0.0 || run.plan.bytes_written > 0.0) {
    --active_disk_flows_;
  }
  --run.set->running;
  auto& runs = run.set->runs_by_index[run.index];
  std::erase(runs, run_id);
}

void TaskScheduler::maybe_speculate(const std::shared_ptr<ActiveSet>& set) {
  if (!options_.speculation) return;
  const std::size_t n = set->ts->tasks.size();
  if (set->finished_durations.size() <
      static_cast<std::size_t>(options_.speculation_quantile *
                               static_cast<double>(n))) {
    return;
  }
  std::vector<double> sorted = set->finished_durations;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  const double median = sorted[sorted.size() / 2];
  const double threshold = options_.speculation_multiplier * median;
  // Snapshot: launching mutates runs_by_index.
  std::vector<std::pair<int, std::uint64_t>> candidates;
  for (const auto& [index, runs] : set->runs_by_index) {
    if (set->task_done_flags[static_cast<std::size_t>(index)] ||
        set->task_speculated[static_cast<std::size_t>(index)] ||
        runs.size() != 1) {
      continue;
    }
    candidates.emplace_back(index, runs.front());
  }
  for (const auto& [index, run_id] : candidates) {
    const auto rit = running_.find(run_id);
    if (rit == running_.end()) continue;
    const auto& m = rit->second.metrics;
    if (m.finish_time - m.launch_time <= threshold) continue;
    if (m.finish_time - sim_->now() <= 0.0) continue;  // about to finish
    const ServerId s = pick_remote_server();
    if (s == kInvalidId || s == rit->second.server) continue;
    set->task_speculated[static_cast<std::size_t>(index)] = 1;
    launch(set, index, s, /*node_local=*/false, /*speculative=*/true);
  }
}

void TaskScheduler::complete(std::uint64_t run_id) {
  const auto it = running_.find(run_id);
  if (it == running_.end()) return;
  RunningTask run = std::move(it->second);
  running_.erase(it);
  by_server_[run.server].erase(run_id);

  Server& srv = cluster_->server(run.server);
  if (srv.alive()) {
    srv.release_core();
    srv.remove_working_set(run.plan.working_set);
    srv.add_busy_seconds(run.metrics.duration());
  }
  if (run.plan.bytes_net > 0.0) --active_net_flows_;
  if (run.plan.bytes_disk > 0.0 || run.plan.bytes_written > 0.0) {
    --active_disk_flows_;
  }

  auto& set = run.set;
  --set->running;
  auto& runs = set->runs_by_index[run.index];
  std::erase(runs, run_id);
  if (set->task_done_flags[static_cast<std::size_t>(run.index)]) {
    // A copy that lost the race but whose cancellation raced the event.
    schedule();
    return;
  }
  // This copy wins; kill any sibling still running.
  set->task_done_flags[static_cast<std::size_t>(run.index)] = 1;
  if (run.speculative) ++speculative_wins_;
  for (const std::uint64_t sibling : std::vector<std::uint64_t>(runs)) {
    discard_run(sibling);
  }
  set->runs_by_index.erase(run.index);

  for (const auto& block : run.plan.blocks_to_cache) {
    cluster_->insert_block(run.server, block.id, block.bytes,
                           block.spill_on_evict);
  }

  ++set->finished;
  set->finished_durations.push_back(run.metrics.duration());
  const TaskSpec& task = set->ts->tasks[static_cast<std::size_t>(run.index)];
  if (set->ts->task_done) set->ts->task_done(task, run.metrics);
  if (set->pending.empty() && set->running == 0 &&
      set->finished == static_cast<int>(set->ts->tasks.size())) {
    task_sets_.remove(set);
    if (set->ts->all_done) set->ts->all_done();
  } else {
    maybe_speculate(set);
  }
  schedule();
}

void TaskScheduler::handle_server_failure(ServerId s) {
  const auto it = by_server_.find(s);
  if (it != by_server_.end()) {
    // Requeue every task that was running there.
    const auto run_ids = it->second;
    for (std::uint64_t run_id : run_ids) {
      auto rit = running_.find(run_id);
      if (rit == running_.end()) continue;
      sim_->cancel(rit->second.event);
      const TaskPlan& plan = rit->second.plan;
      if (plan.bytes_net > 0.0) --active_net_flows_;
      if (plan.bytes_disk > 0.0 || plan.bytes_written > 0.0) {
        --active_disk_flows_;
      }
      auto set = rit->second.set;
      const int index = rit->second.index;
      --set->running;
      auto& runs = set->runs_by_index[index];
      std::erase(runs, run_id);
      // Requeue only if no surviving copy exists and it never finished.
      if (runs.empty() &&
          !set->task_done_flags[static_cast<std::size_t>(index)]) {
        set->task_speculated[static_cast<std::size_t>(index)] = 0;
        set->pending.push_back(index);
      }
      running_.erase(rit);
    }
    by_server_.erase(s);
  }
  contention_.erase(s);
  schedule();
}

}  // namespace stark
