// Driver-side admission control for overload protection.
//
// Every job submitted to the DagScheduler first passes through an
// AdmissionController: at most `max_in_flight_jobs` jobs (scaled down under
// memory pressure) are dispatched per app at once; arrivals beyond that
// wait in a bounded per-app FIFO. When the queue is also full the
// configured policy decides who pays:
//
//   * kRejectNew  — the arriving job is refused (JobStatus::kRejected).
//   * kShedOldest — the oldest *queued* job of the app is dropped
//                   (JobStatus::kShed) and the arrival takes its place;
//                   freshest work wins, matching interactive sessions where
//                   a stale queued query is worthless by the time it runs.
//   * kBlock      — the queue is unbounded; nothing is refused, intake is
//                   only throttled. Latency grows instead of loss.
//
// Rejected and shed jobs complete *synchronously* with completed=false and
// the corresponding JobStatus, so callers always get their callback —
// nothing ever vanishes. All knobs default off: with
// `admission_enabled=false` the controller is never consulted and the
// engine is byte-identical to a build without it.
#pragma once

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/memory_pressure.h"
#include "common/types.h"

namespace stark {

enum class AdmissionPolicy { kRejectNew, kShedOldest, kBlock };

// Stable lower-case name ("reject-new", "shed-oldest", "block").
const char* admission_policy_name(AdmissionPolicy policy) noexcept;

// What the controller decided for one arrival. Numeric values appear as
// the `code` of kAdmissionVerdict trace instants.
enum class AdmissionVerdict { kAdmit = 0, kQueue = 1, kReject = 2, kShed = 3 };

const char* admission_verdict_name(AdmissionVerdict verdict) noexcept;

// Overload-protection knobs, wired through ContextOptions::overload and
// mirrored into DagOptions::overload by api::Context. Defaults keep every
// mechanism off and the engine byte-identical to a build without them.
struct OverloadOptions {
  // Master switch for admission control. Off: submit() dispatches
  // unconditionally, exactly as before.
  bool admission_enabled = false;
  AdmissionPolicy policy = AdmissionPolicy::kRejectNew;
  // Dispatched-but-unfinished jobs allowed per app before arrivals queue.
  int max_in_flight_jobs = 64;
  // Bound on the per-app pending queue (ignored by kBlock). Must be > 0
  // when admission is enabled and the policy is not kBlock.
  int max_pending_jobs = 256;
  // Whole-job timeout in simulated seconds, measured from submission
  // (queueing time counts). 0 disables deadlines. Works independently of
  // admission_enabled.
  double deadline_seconds = 0.0;
  // Intake scaling under memory pressure: the effective in-flight limit is
  // floor(max_in_flight_jobs * factor), at least 1. Must be in (0, 1].
  double yellow_intake_factor = 1.0;
  double red_intake_factor = 0.5;
  MemoryPressureOptions pressure;
};

// Per-run overload counters, surfaced via DagScheduler::overload_stats()
// and MetricsCollector::observe_overload().
struct OverloadStats {
  int jobs_admitted = 0;       // dispatched immediately on arrival
  int jobs_queued = 0;         // parked in a pending queue at least once
  int jobs_rejected = 0;       // refused under kRejectNew
  int jobs_shed = 0;           // dropped from a queue under kShedOldest
  int deadline_exceeded = 0;   // jobs cancelled by their deadline
  int pressure_transitions = 0;  // band changes observed by the scheduler
  int red_entries = 0;           // transitions into Red
  void reset() noexcept { *this = OverloadStats{}; }
};

// Pure bookkeeping: per-app in-flight counts and pending FIFOs. The
// DagScheduler owns one, consults it on submit, and releases slots as jobs
// finish. Job payloads stay in the scheduler; the controller only tracks
// ids, so deadline-driven removals are O(queue).
class AdmissionController {
 public:
  explicit AdmissionController(const OverloadOptions& options)
      : options_(options) {}

  struct Decision {
    AdmissionVerdict verdict = AdmissionVerdict::kAdmit;
    // Under kShed: the queued job that was dropped to make room (already
    // removed from its queue); the caller must close it as kShed.
    JobId shed = kInvalidId;
  };

  // Decide for a new arrival and update state accordingly (kAdmit bumps
  // the in-flight count, kQueue/kShed enqueue the id).
  Decision admit(const std::string& app, JobId id, PressureBand band);

  // A dispatched job finished (completed, failed, aborted, or timed out).
  void release(const std::string& app);

  // Remove a still-queued job (its deadline fired while waiting). Returns
  // false if the id was not queued (already dispatched or closed).
  bool remove_pending(const std::string& app, JobId id);

  // Pop the next job allowed to dispatch now (FIFO across apps by job id,
  // oldest arrival first among apps with capacity) and charge its slot.
  // kInvalidId when nothing may dispatch. The caller receives the app via
  // `app_out` and must start the job.
  JobId next_dispatchable(PressureBand band, std::string* app_out);

  // Effective in-flight limit under `band` (floor(max * factor), >= 1).
  int effective_limit(PressureBand band) const noexcept;

  int in_flight(const std::string& app) const noexcept;
  int pending(const std::string& app) const noexcept;
  int total_pending() const noexcept;

 private:
  struct AppState {
    int in_flight = 0;
    std::deque<JobId> queue;  // front = oldest arrival
  };

  OverloadOptions options_;
  std::unordered_map<std::string, AppState> apps_;
  std::vector<std::string> app_order_;  // first-seen order, for determinism
};

}  // namespace stark
