// Driver-side admission control for overload protection.
//
// Every job submitted to the DagScheduler first passes through an
// AdmissionController: at most `max_in_flight_jobs` jobs (scaled down under
// memory pressure, overridable per tenant) are dispatched per
// (tenant, lane) at once; arrivals beyond that wait in a bounded per-lane
// priority queue (FIFO within equal priority — all-zero priorities are
// exactly the historical FIFO). When the queue is also full the configured
// policy decides who pays:
//
//   * kRejectNew  — the arriving job is refused (JobStatus::kRejected).
//   * kShedOldest — the lowest-priority oldest *queued* job of the lane is
//                   dropped (JobStatus::kShed) and the arrival takes its
//                   place; freshest work wins, matching interactive
//                   sessions where a stale queued query is worthless by the
//                   time it runs.
//   * kBlock      — the queue is unbounded; nothing is refused, intake is
//                   only throttled. Latency grows instead of loss.
//
// Rejected and shed jobs complete *synchronously* with completed=false and
// the corresponding JobStatus, so callers always get their callback —
// nothing ever vanishes. All knobs default off: with
// `admission_enabled=false` the controller is never consulted and the
// engine is byte-identical to a build without it.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/memory_pressure.h"
#include "common/types.h"

namespace stark {

enum class AdmissionPolicy { kRejectNew, kShedOldest, kBlock };

// Stable lower-case name ("reject-new", "shed-oldest", "block").
const char* admission_policy_name(AdmissionPolicy policy) noexcept;

// What the controller decided for one arrival. Numeric values appear as
// the `code` of kAdmissionVerdict trace instants.
enum class AdmissionVerdict { kAdmit = 0, kQueue = 1, kReject = 2, kShed = 3 };

const char* admission_verdict_name(AdmissionVerdict verdict) noexcept;

// Overload-protection knobs, wired through ContextOptions::overload and
// mirrored into DagOptions::overload by api::Context. Defaults keep every
// mechanism off and the engine byte-identical to a build without them.
struct OverloadOptions {
  // Master switch for admission control. Off: submit() dispatches
  // unconditionally, exactly as before.
  bool admission_enabled = false;
  AdmissionPolicy policy = AdmissionPolicy::kRejectNew;
  // Dispatched-but-unfinished jobs allowed per (tenant, lane) before
  // arrivals queue. Tenants may override via TenantOptions.
  int max_in_flight_jobs = 64;
  // Bound on the per-(tenant, lane) pending queue (ignored by kBlock).
  // Must be > 0 when admission is enabled and the policy is not kBlock.
  // Tenants may override via TenantOptions.
  int max_pending_jobs = 256;
  // Whole-job timeout in simulated seconds, measured from submission
  // (queueing time counts). 0 disables deadlines. Works independently of
  // admission_enabled.
  double deadline_seconds = 0.0;
  // Intake scaling under memory pressure: the effective in-flight limit is
  // floor(max_in_flight_jobs * factor), at least 1. Must be in (0, 1].
  double yellow_intake_factor = 1.0;
  double red_intake_factor = 0.5;
  MemoryPressureOptions pressure;
};

// Per-run overload counters, surfaced via DagScheduler::overload_stats()
// and MetricsCollector::observe_overload().
struct OverloadStats {
  int jobs_admitted = 0;       // dispatched immediately on arrival
  int jobs_queued = 0;         // parked in a pending queue at least once
  int jobs_rejected = 0;       // refused under kRejectNew
  int jobs_shed = 0;           // dropped from a queue under kShedOldest
  int deadline_exceeded = 0;   // jobs cancelled by their deadline
  int pressure_transitions = 0;  // band changes observed by the scheduler
  int red_entries = 0;           // transitions into Red
  void reset() noexcept { *this = OverloadStats{}; }
};

// What admission state is keyed by: a (tenant, lane) pair. Each key owns
// its own in-flight count and pending queue; limits come from the tenant's
// overrides (or the global OverloadOptions when unset) and apply per key,
// so a tenant's "followup" lane cannot be starved or shed by its fresh
// arrivals.
struct AdmissionKey {
  TenantId tenant = 0;
  std::string lane;
  bool operator==(const AdmissionKey&) const = default;
};

struct AdmissionKeyHash {
  std::size_t operator()(const AdmissionKey& k) const noexcept {
    return std::hash<std::string>{}(k.lane) * 1315423911u +
           static_cast<std::size_t>(k.tenant);
  }
};

// Pure bookkeeping: per-(tenant, lane) in-flight counts and pending
// queues. The DagScheduler owns one, consults it on submit, and releases
// slots as jobs finish. Job payloads stay in the scheduler; the controller
// only tracks ids and priorities, so deadline-driven removals are
// O(queue).
class AdmissionController {
 public:
  explicit AdmissionController(const OverloadOptions& options)
      : options_(options) {}

  struct Decision {
    AdmissionVerdict verdict = AdmissionVerdict::kAdmit;
    // Under kShed: the queued job that was dropped to make room (already
    // removed from its queue); the caller must close it as kShed.
    JobId shed = kInvalidId;
  };

  // Decide for a new arrival and update state accordingly (kAdmit bumps
  // the in-flight count, kQueue/kShed enqueue the id at its priority
  // position: after all entries of >= priority, before lower ones).
  Decision admit(const AdmissionKey& key, JobId id, int priority,
                 PressureBand band);

  // A dispatched job finished (completed, failed, aborted, or timed out).
  void release(const AdmissionKey& key);

  // Remove a still-queued job (its deadline fired while waiting). Returns
  // false if the id was not queued (already dispatched or closed).
  bool remove_pending(const AdmissionKey& key, JobId id);

  // Pop the next job allowed to dispatch now (smallest queue-front job id
  // among keys with capacity — oldest arrival first at equal priority) and
  // charge its slot. kInvalidId when nothing may dispatch. The caller
  // receives the key via `key_out` and must start the job.
  JobId next_dispatchable(PressureBand band, AdmissionKey* key_out);

  // Effective in-flight limit under `band` (floor(max * factor), >= 1),
  // using the tenant's max_in_flight_jobs override when configured.
  int effective_limit(PressureBand band, TenantId tenant = 0) const noexcept;

  // Per-tenant admission overrides (0 = use the global OverloadOptions
  // value). Wired from TenantOptions by the DagScheduler constructor.
  void set_tenant_limits(TenantId tenant, int max_in_flight, int max_pending);

  int in_flight(const AdmissionKey& key) const noexcept;
  int pending(const AdmissionKey& key) const noexcept;
  int total_pending() const noexcept;

 private:
  struct QueuedJob {
    JobId id = kInvalidId;
    int priority = 0;
  };
  struct LaneState {
    int in_flight = 0;
    // Sorted by descending priority, FIFO within equal priority; front =
    // next to dispatch. With all-zero priorities this is a plain FIFO.
    std::deque<QueuedJob> queue;
  };

  // The pending-queue bound for `tenant` (tenant override or global).
  int max_pending(TenantId tenant) const noexcept;

  OverloadOptions options_;
  std::unordered_map<AdmissionKey, LaneState, AdmissionKeyHash> lanes_;
  std::vector<AdmissionKey> key_order_;  // first-seen order, for determinism
  // Indexed by TenantId; 0 entries (or ids past the end) mean "use global".
  std::vector<int> tenant_max_in_flight_;
  std::vector<int> tenant_max_pending_;
};

}  // namespace stark
