#include "sched/stage.h"

#include <unordered_set>

namespace stark {

StageChain collect_stage_chain(
    const DatasetPtr& boundary,
    const std::function<bool(DatasetId)>& is_checkpointed) {
  StageChain chain;
  std::unordered_set<DatasetId> seen;
  std::vector<DatasetPtr> stack{boundary};
  seen.insert(boundary->id());
  while (!stack.empty()) {
    DatasetPtr ds = stack.back();
    stack.pop_back();
    chain.datasets.push_back(ds);
    if (is_checkpointed(ds->id())) continue;  // recovery reads from disk
    for (std::size_t i = 0; i < ds->deps().size(); ++i) {
      const auto& dep = ds->deps()[i];
      if (dep.wide) {
        chain.shuffle_deps.push_back({ds, i});
      } else if (seen.insert(dep.parent->id()).second) {
        stack.push_back(dep.parent);
      }
    }
  }
  return chain;
}

}  // namespace stark
