// First-class tenant model for multi-tenant cluster simulation.
//
// A tenant is a named principal sharing the cluster: it owns a scheduling
// weight (fair-share), a cache quota (fraction of every server's RAM it may
// fill before evicting its own blocks first), and admission limits that
// override the global OverloadOptions bounds. Tenants are configured up
// front via ContextOptions::tenants and resolved to dense TenantIds by the
// TenantRegistry; names arriving at submit() that were never configured are
// auto-registered with default options (weight 1, no quota, global limits),
// so ad-hoc workloads keep working without declaring themselves.
//
// TenantId 0 is always the default tenant (the empty name). Configured
// tenants get ids 1..N in declaration order; auto-registered ones follow in
// first-submission order, which is deterministic for a deterministic
// workload.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace stark {

// Per-tenant knobs, validated by MultiTenantOptions::validate().
struct TenantOptions {
  // Unique, non-empty tenant name (the submit-side key).
  std::string name;
  // Fair-share weight (> 0): under saturation the task scheduler targets
  // running-core shares proportional to weight.
  double weight = 1.0;
  // Fraction of each server's cache capacity this tenant may occupy before
  // its own blocks are evicted first ([0, 1]; 0 = no quota: the tenant
  // competes in the shared pool like before).
  double cache_quota = 0.0;
  // Admission overrides (0 = use the global OverloadOptions value).
  int max_in_flight_jobs = 0;
  int max_pending_jobs = 0;
};

// Tenant configuration handed through ContextOptions::tenants and mirrored
// into DagOptions by api::Context. Defaults (no tenants, fair_share off)
// leave the engine byte-identical to a single-tenant build.
struct MultiTenantOptions {
  // Weighted fair-share task scheduling between tenants. Off: the scheduler
  // runs the historical FIFO ready-set scan unchanged.
  bool fair_share = false;
  std::vector<TenantOptions> tenants;

  // Rejects inconsistent knobs with std::invalid_argument naming the field.
  void validate() const;
};

// Name <-> dense id mapping plus the per-tenant options. Owned by the
// DagScheduler; lookups on the submit path are one hash probe.
class TenantRegistry {
 public:
  // Registers only the default tenant (id 0, empty name).
  TenantRegistry();
  // Registers the default tenant plus every configured tenant (ids 1..N in
  // declaration order). Assumes options.validate() passed.
  explicit TenantRegistry(const MultiTenantOptions& options);

  // Lookup-or-register: unknown names are added with default options so
  // ad-hoc apps need no up-front declaration. The empty name is tenant 0.
  TenantId resolve(const std::string& name);

  // Lookup-only: kInvalidId when the name was never seen.
  TenantId find(const std::string& name) const;

  const TenantOptions& options(TenantId id) const {
    return tenants_.at(static_cast<std::size_t>(id));
  }
  const std::string& name(TenantId id) const {
    return tenants_.at(static_cast<std::size_t>(id)).name;
  }
  int size() const noexcept { return static_cast<int>(tenants_.size()); }

 private:
  std::vector<TenantOptions> tenants_;  // index == TenantId
  std::unordered_map<std::string, TenantId> by_name_;
};

}  // namespace stark
