// TaskScheduler: delay scheduling with Stark's Minimum-Contention-First
// remote placement (paper Algorithm 1).
//
// Task sets are served FIFO. Each set first tries NODE_LOCAL placement on
// its tasks' preferred executors; once `locality_wait` elapses without a
// local launch the set escalates to ANY and takes remote slots. Under MCF
// the remote offers are sorted ascending by the number of unique collection
// partitions the executor caches, so tasks spill onto the least-contended
// executors — Stark's contention-aware replication signal.
//
// The driver dispatches tasks serially (`driver_dispatch_per_task`), which
// is what makes very high partition counts and very high job rates
// driver-bound, as in the paper's Fig 7 / Fig 19.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "cluster/cluster.h"
#include "cluster/cost_model.h"
#include "common/rng.h"
#include "sched/task.h"
#include "sim/simulation.h"

namespace stark {

// What executing one task on one server will cost; produced by the
// DagScheduler's planner at launch time from current cache state.
struct TaskPlan {
  double cpu = 0.0;
  double gc = 0.0;
  double shuffle_read = 0.0;
  double disk = 0.0;
  int fetch_waves = 0;  // remote fetch rounds (each pays an RTT)
  Bytes bytes_cache = 0.0;
  Bytes bytes_net = 0.0;
  Bytes bytes_disk = 0.0;
  Bytes bytes_written = 0.0;
  // Deserialized heap footprint while the task runs (drives GC pressure
  // for concurrently scheduled tasks).
  Bytes working_set = 0.0;
  // Widest cogroup/join the task materializes (scales object overhead).
  int cogroup_width = 0;
  // Blocks materialized on the executor when the task finishes.
  struct CachedBlock {
    BlockId id;
    Bytes bytes = 0.0;         // in-memory footprint (post-serialization)
    bool spill_on_evict = false;  // MEMORY_AND_DISK blocks spill, not drop
  };
  std::vector<CachedBlock> blocks_to_cache;

  double work_seconds() const noexcept {
    return cpu + gc + shuffle_read + disk;
  }
};

class TaskScheduler {
 public:
  struct Options {
    bool mcf = false;
    double locality_wait = 3.0;
    // Speculative execution (spark.speculation): once
    // `speculation_quantile` of a set's tasks have finished, any still-
    // running task expected to exceed `speculation_multiplier` x the median
    // finished duration gets a second copy on another executor; the first
    // copy to finish wins and the loser is cancelled.
    bool speculation = false;
    double speculation_multiplier = 1.5;
    double speculation_quantile = 0.75;
    // Seed for stock Spark's random remote placement (ignored under MCF,
    // which orders offers by contention instead).
    std::uint64_t seed = 0x5041524bULL;
  };

  using PlanFn = std::function<TaskPlan(const TaskSpec&, ServerId)>;
  using TaskDoneFn = std::function<void(const TaskSpec&, const TaskMetrics&)>;
  using AllDoneFn = std::function<void()>;
  // Resolves a dataset to its locality namespace ('' if none).
  using NsOfDatasetFn = std::function<std::string(DatasetId)>;

  struct TaskSet {
    JobId job = kInvalidId;
    StageId stage = kInvalidId;
    std::vector<TaskSpec> tasks;
    PlanFn plan;
    TaskDoneFn task_done;
    AllDoneFn all_done;
  };
  using TaskSetPtr = std::shared_ptr<TaskSet>;

  TaskScheduler(sim::Simulation& sim, Cluster& cluster, const CostModel& cost,
                Options options, NsOfDatasetFn ns_of_dataset);

  void submit(TaskSetPtr ts);

  // Re-runs the matching loop; invoked internally on every event that can
  // free or demand resources.
  void schedule();

  // MCF contention metric: unique collection partitions cached on a server.
  int unique_collection_partitions(ServerId s) const;

  // Wire this to Cluster::add_block_observer (done by the api::Context).
  void on_block_event(ServerId s, const BlockId& id, bool inserted);

  // Cancels tasks running on a failed server and requeues them.
  void handle_server_failure(ServerId s);

  std::size_t running_tasks() const noexcept { return running_.size(); }
  std::size_t pending_task_sets() const noexcept { return task_sets_.size(); }
  int speculative_launches() const noexcept { return speculative_launches_; }
  int speculative_wins() const noexcept { return speculative_wins_; }
  SimTime driver_free_at() const noexcept { return driver_free_at_; }

  // Congestion signals: running tasks currently using the network (shuffle
  // fetches) / the disks. The planner divides per-flow bandwidth by the
  // average flows-per-server to approximate shared NICs and spindles.
  int active_net_flows() const noexcept { return active_net_flows_; }
  int active_disk_flows() const noexcept { return active_disk_flows_; }

 private:
  struct ActiveSet {
    TaskSetPtr ts;
    std::deque<int> pending;
    int running = 0;
    int finished = 0;
    SimTime locality_anchor = 0.0;  // max(submit time, last local launch)
    bool has_preferences = false;
    // Speculation bookkeeping.
    std::vector<char> task_done_flags;
    std::vector<char> task_speculated;
    std::vector<double> finished_durations;
    std::unordered_map<int, std::vector<std::uint64_t>> runs_by_index;
  };
  struct RunningTask {
    std::shared_ptr<ActiveSet> set;
    int index;
    ServerId server;
    sim::EventId event;
    TaskMetrics metrics;
    TaskPlan plan;
    bool speculative = false;
  };

  void launch(const std::shared_ptr<ActiveSet>& set, int index, ServerId s,
              bool node_local, bool speculative = false);
  void complete(std::uint64_t run_id);
  void maybe_speculate(const std::shared_ptr<ActiveSet>& set);
  void discard_run(std::uint64_t run_id);  // cancel + release resources
  void arm_timer(SimTime at);
  ServerId pick_remote_server();
  std::uint64_t collection_key(const BlockId& id) const;

  sim::Simulation* sim_;
  Cluster* cluster_;
  CostModel cost_;
  Options options_;
  NsOfDatasetFn ns_of_dataset_;

  std::list<std::shared_ptr<ActiveSet>> task_sets_;  // FIFO
  std::unordered_map<std::uint64_t, RunningTask> running_;
  std::unordered_map<ServerId, std::unordered_set<std::uint64_t>> by_server_;
  std::unordered_map<ServerId, std::unordered_map<std::uint64_t, int>>
      contention_;
  Rng placement_rng_;
  int active_net_flows_ = 0;
  int active_disk_flows_ = 0;
  int speculative_launches_ = 0;
  int speculative_wins_ = 0;
  std::uint64_t next_run_id_ = 0;
  SimTime driver_free_at_ = 0.0;
  bool timer_armed_ = false;
  SimTime timer_at_ = 0.0;
  bool in_schedule_ = false;
};

}  // namespace stark
