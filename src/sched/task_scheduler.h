// TaskScheduler: delay scheduling with Stark's Minimum-Contention-First
// remote placement (paper Algorithm 1), plus Spark-faithful failure
// machinery.
//
// Task sets are served FIFO. Each set first tries NODE_LOCAL placement on
// its tasks' preferred executors; once `locality_wait` elapses without a
// local launch the set escalates to ANY and takes remote slots. Under MCF
// the remote offers are sorted ascending by the number of unique collection
// partitions the executor caches, so tasks spill onto the least-contended
// executors — Stark's contention-aware replication signal.
//
// Failure semantics (mirroring Spark's TaskSetManager / HealthTracker):
//  * A failed task retries with exponential backoff up to
//    `max_task_failures` times (spark.task.maxFailures); exhausting the
//    budget aborts the whole set, which the DagScheduler turns into a clean
//    job abort — never a hang.
//  * Fetch failures do not count against the task's retry budget; they are
//    reported to the DagScheduler, which parks the task until the lost map
//    outputs are regenerated (stage resubmission).
//  * excludeOnFailure: a task never retries on an executor it already
//    failed on; an executor accumulating failures within one stage is
//    excluded for that stage; an executor accumulating failures across the
//    app is excluded cluster-wide for `exclude_timeout` seconds, then
//    re-admitted.
//  * Results arriving from a dead or restarted incarnation are dropped as
//    zombies; results from a partitioned (unreachable) executor are
//    deferred until the partition heals. Cleanup of a lost executor's runs
//    happens when the driver *detects* the loss (handle_server_failure),
//    not when the server physically dies.
//
// The driver dispatches tasks serially (`driver_dispatch_per_task`), which
// is what makes very high partition counts and very high job rates
// driver-bound, as in the paper's Fig 7 / Fig 19.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/cost_model.h"
#include "common/rng.h"
#include "obs/tracer.h"
#include "sched/stage.h"
#include "sched/task.h"
#include "sim/simulation.h"

namespace stark {

// What executing one task on one server will cost; produced by the
// DagScheduler's planner at launch time from current cache state.
struct TaskPlan {
  double cpu = 0.0;
  // Informational split of `cpu`: time spent parsing serialized bytes
  // (cache reads of serialized blocks, spill reads, checkpoint and source
  // reads). Already included in cpu — never added on top.
  double deserialize = 0.0;
  double gc = 0.0;
  double shuffle_read = 0.0;
  double disk = 0.0;
  // Remote-memory tier reads (one-sided fetches from the disaggregated
  // pool; see cluster/remote_memory.h). Exactly 0.0 with the tier off.
  double remote = 0.0;
  int fetch_waves = 0;  // remote fetch rounds (each pays an RTT)
  int remote_reads = 0;  // remote-pool faults (each pays the setup latency)
  Bytes bytes_cache = 0.0;
  Bytes bytes_net = 0.0;
  Bytes bytes_disk = 0.0;
  Bytes bytes_remote = 0.0;
  Bytes bytes_written = 0.0;
  // Deserialized heap footprint while the task runs (drives GC pressure
  // for concurrently scheduled tasks).
  Bytes working_set = 0.0;
  // Widest cogroup/join the task materializes (scales object overhead).
  int cogroup_width = 0;
  // Blocks materialized on the executor when the task finishes.
  struct CachedBlock {
    BlockId id;
    Bytes bytes = 0.0;         // in-memory footprint (post-serialization)
    bool spill_on_evict = false;  // MEMORY_AND_DISK blocks spill, not drop
    // Planner's estimate (seconds) of rebuilding this block from lineage;
    // 0 = not computed. Feeds the kCostSize eviction policy at insert.
    double recompute_cost = 0.0;
  };
  std::vector<CachedBlock> blocks_to_cache;

  // Cached blocks this plan reads on the chosen executor. Filled only when
  // block pinning is enabled (CachePolicyOptions::pin_running_blocks): the
  // scheduler pins them for the run's lifetime so the eviction policy
  // cannot victimize a block a running task depends on. May hold
  // duplicates (a block read via two lineage paths pins twice; pins nest).
  std::vector<BlockId> blocks_referenced;

  // Set by the planner when a shuffle fetch cannot succeed (map output
  // missing, or its host dead/partitioned): the task occupies its slot for
  // `fetch_fail_seconds`, then fails with kFetchFailed instead of
  // completing.
  struct FetchFailure {
    ShuffleKey shuffle;
    ServerId source = kInvalidId;  // kInvalidId: output not registered
  };
  std::optional<FetchFailure> fetch_failure;

  // Fail-slow scorecard feedback, filled by the planner only when
  // FaultOptions::slowness.enabled: the observed/expected latency ratios
  // the driver can measure once this run completes. The completion path
  // feeds them to the SlownessTracker (winning copies only, so a
  // cancelled speculative sibling does not double-report).
  struct SlownessObs {
    float cpu_ratio = 1.0f;   // executor compute stretch
    float disk_ratio = 1.0f;  // executor spindle stretch
    double fetch_seconds = 0.0;  // effective fetch-phase duration
    // Per map-output source host: observed per-slice net stretch.
    std::vector<std::pair<ServerId, float>> source_net;
  };
  std::optional<SlownessObs> slowness;

  double work_seconds() const noexcept {
    return cpu + gc + shuffle_read + disk + remote;
  }
};

// Details handed to the DagScheduler when a task run fails.
struct TaskFailure {
  TaskFailureKind kind = TaskFailureKind::kTaskError;
  ServerId server = kInvalidId;     // where the run was placed
  ShuffleKey shuffle;               // kFetchFailed: which shuffle
  ServerId fetch_source = kInvalidId;  // kFetchFailed: failing host
  int attempts = 0;                 // failures of this task so far
};

// How the DagScheduler wants a failed task handled.
enum class TaskFailureAction {
  kRetry,  // requeue with backoff (bounded by max_task_failures)
  kPark,   // hold until unpark() — used while a map stage is resubmitted
};

class TaskScheduler {
 public:
  struct Options {
    bool mcf = false;
    double locality_wait = 3.0;
    // Speculative execution (spark.speculation): once
    // `speculation_quantile` of a set's tasks have finished, any still-
    // running task expected to exceed `speculation_multiplier` x the median
    // finished duration gets a second copy on another executor; the first
    // copy to finish wins and the loser is cancelled.
    bool speculation = false;
    double speculation_multiplier = 1.5;
    double speculation_quantile = 0.75;
    // Seed for stock Spark's random remote placement (ignored under MCF,
    // which orders offers by contention instead).
    std::uint64_t seed = 0x5041524bULL;
    // Deep-backlog guard: once more than `deep_backlog_threshold` task sets
    // have pending work, a scheduling pass stops after
    // `backlog_fruitless_limit` consecutive sets that launched nothing and
    // arms a revisit timer `backlog_revisit_interval` seconds out. The
    // timer is a backstop only — any completion that frees a core re-runs
    // the pass immediately, so no wakeup is lost to the interval.
    std::size_t deep_backlog_threshold = 256;
    int backlog_fruitless_limit = 128;
    double backlog_revisit_interval = 0.2;
    // Weighted fair-share across tenants: each scheduling step offers the
    // oldest ready set of the tenant with the lowest weighted running-core
    // share (tenant weights via set_tenant_weight). Off: the historical
    // FIFO ready-set scan, byte-identical to a build without tenants.
    bool fair_share = false;
    // Retry / exclusion knobs (see FaultOptions in sched/task.h).
    FaultOptions faults;
  };

  using PlanFn = std::function<TaskPlan(const TaskSpec&, ServerId)>;
  using TaskDoneFn = std::function<void(const TaskSpec&, const TaskMetrics&)>;
  using AllDoneFn = std::function<void()>;
  using TaskFailedFn =
      std::function<TaskFailureAction(const TaskSpec&, const TaskFailure&)>;
  using AbortFn = std::function<void(const std::string& reason)>;
  // Resolves a dataset to its locality namespace ('' if none).
  using NsOfDatasetFn = std::function<std::string(DatasetId)>;

  struct TaskSet {
    JobId job = kInvalidId;
    StageId stage = kInvalidId;
    // Tenant the owning job runs as (0 = default); drives fair-share
    // ordering and cache-quota ownership of the blocks the tasks cache.
    TenantId tenant = 0;
    std::vector<TaskSpec> tasks;
    PlanFn plan;
    TaskDoneFn task_done;
    AllDoneFn all_done;
    TaskFailedFn task_failed;  // optional; default action is kRetry
    AbortFn on_abort;          // optional; fired when retries are exhausted
  };
  using TaskSetPtr = std::shared_ptr<TaskSet>;

  TaskScheduler(sim::Simulation& sim, Cluster& cluster, const CostModel& cost,
                Options options, NsOfDatasetFn ns_of_dataset);

  void submit(TaskSetPtr ts);

  // Re-runs the matching loop; invoked internally on every event that can
  // free or demand resources.
  void schedule();

  // MCF contention metric: unique collection partitions cached on a server.
  int unique_collection_partitions(ServerId s) const;

  // Wire this to Cluster::add_block_observer (done by the api::Context).
  void on_block_event(ServerId s, const BlockId& id, bool inserted);

  // Driver-side executor-lost handling: fails (and normally requeues) every
  // task the driver believes is running on s. Called when the loss is
  // *detected* (heartbeat timeout / re-registration), or directly by tests
  // that keep the old oracle semantics.
  void handle_server_failure(ServerId s);

  // A partitioned executor came back without restarting: task results that
  // finished during the partition are delivered now.
  void on_server_healed(ServerId s);

  // Moves every parked task of the (job, stage) set back to pending (the
  // shuffle outputs it was waiting for are available again).
  void unpark(JobId job, StageId stage);

  // Discards every task set of the job (pending, parked and running runs).
  // Used by job aborts; no further callbacks fire for those sets.
  void cancel_job(JobId job);

  // The driver's belief about executor liveness (wired to the
  // FailureDetector by api::Context). Unset = trust Server::alive().
  void set_admission_fn(std::function<bool(ServerId)> fn) {
    admission_ = std::move(fn);
    offer_cache_valid_ = false;
  }

  // Monotonic counter that advances whenever the admission function's
  // answers may have changed (wired to FailureDetector::belief_epoch by
  // api::Context). With it, the offer cache survives across scheduling
  // sweeps until a belief actually flips; without it, an admission fn
  // forces a conservative rebuild every sweep.
  void set_admission_epoch_fn(std::function<std::uint64_t()> fn) {
    admission_epoch_ = std::move(fn);
    offer_cache_valid_ = false;
  }

  // Fired when a scheduling pass tries to place a task on an executor the
  // driver believes alive but whose process is gone: the launch RPC fails
  // and the disconnect reveals the loss (wired to
  // FailureDetector::report_launch_failure by api::Context).
  void set_launch_failed_fn(std::function<void(ServerId)> fn) {
    launch_failed_ = std::move(fn);
    offer_cache_valid_ = false;
  }

  // Gray-failure injection: every launched run fails partway through with
  // this probability (deterministic, seeded stream). 0 disables.
  void set_flaky_task_probability(double p) { flaky_probability_ = p; }
  double flaky_task_probability() const noexcept { return flaky_probability_; }

  // Failure counters shared with the DagScheduler (optional).
  void set_failure_stats(FailureStats* stats) { stats_ = stats; }

  // Fail-slow scorecards (optional; owned by the DagScheduler and set only
  // when FaultOptions::slowness.enabled). With a tracker wired: completed
  // runs feed their SlownessObs ratios, the fetch-failure discovery time
  // adapts to the observed fetch distribution, and believed-Degraded peers
  // are deprioritized for remote placement (with timed probes) — a track
  // deliberately separate from the fail-stop exclusion machinery.
  void set_slowness_tracker(SlownessTracker* tracker) noexcept {
    slowness_ = tracker;
  }

  // Structured tracing of task launch/finish/retry/fail (see obs/tracer.h).
  // Null or disabled costs one pointer test per choke point.
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }

  // Veto on blocks_to_cache insertions at task completion. Plans are
  // priced at launch; a dataset freed while its lineage recompute is in
  // flight (the advisor's auto-free, or DagScheduler::retire_dataset)
  // must not have the recomputed partition re-inserted into its dead
  // cache. Null (the default) inserts everything, as before.
  void set_block_insert_filter(std::function<bool(const BlockId&)> filter) {
    block_insert_filter_ = std::move(filter);
  }

  // Degrade mode under memory pressure (Red band): speculative copies are
  // temporarily not launched even with Options::speculation on. Flipped by
  // the DagScheduler on pressure-band transitions; already-running
  // speculative copies keep racing.
  void set_speculation_suspended(bool suspended) noexcept {
    speculation_suspended_ = suspended;
  }
  bool speculation_suspended() const noexcept {
    return speculation_suspended_;
  }

  // Fair-share weight for a tenant (> 0; unset tenants weigh 1.0). Wired
  // from TenantOptions by the DagScheduler constructor.
  void set_tenant_weight(TenantId tenant, double weight);
  // Cores currently running tasks of this tenant (maintained regardless of
  // fair_share, so benches/tests can measure shares in either mode).
  int tenant_running_cores(TenantId tenant) const noexcept;

  std::size_t running_tasks() const noexcept { return running_.size(); }
  std::size_t pending_task_sets() const noexcept { return task_sets_.size(); }
  // Logical tasks completed (winning copies only), across all sets ever run.
  std::uint64_t tasks_completed() const noexcept { return tasks_completed_; }
  int speculative_launches() const noexcept { return speculative_launches_; }
  int speculative_wins() const noexcept { return speculative_wins_; }
  SimTime driver_free_at() const noexcept { return driver_free_at_; }

  // Exclusion introspection.
  bool app_excluded(ServerId s) const;
  int app_exclusions() const noexcept { return app_exclusions_; }

  // Quarantine entry point for detected storage corruptions: charges the
  // hosting executor's app-level exclusion budget (no per-task/per-stage
  // charge — no task actually failed). Gated on exclude_on_failure and
  // quarantine_on_corruption.
  void record_integrity_failure(ServerId server);

  // Congestion signals: running tasks currently using the network (shuffle
  // fetches) / the disks. The planner divides per-flow bandwidth by the
  // average flows-per-server to approximate shared NICs and spindles.
  int active_net_flows() const noexcept { return active_net_flows_; }
  int active_disk_flows() const noexcept { return active_disk_flows_; }

 private:
  struct ActiveSet {
    TaskSetPtr ts;
    std::deque<int> pending;
    std::unordered_set<int> parked;  // waiting on stage resubmission
    int running = 0;
    int finished = 0;
    int backoff_pending = 0;  // failed tasks waiting out their backoff
    bool aborted = false;
    SimTime locality_anchor = 0.0;  // max(submit time, last local launch)
    bool has_preferences = false;
    // Retry / exclusion bookkeeping.
    std::vector<int> attempts;  // failed runs per task index
    std::unordered_map<int, std::unordered_map<ServerId, int>> failed_on;
    std::unordered_map<ServerId, int> stage_failures;
    std::unordered_set<ServerId> stage_excluded;
    // Speculation bookkeeping.
    std::vector<char> task_done_flags;
    std::vector<char> task_speculated;
    std::vector<double> finished_durations;
    // In-flight run ids per task index (size == tasks.size()); an entry is
    // non-empty only while copies of that task are running.
    std::vector<std::vector<std::uint64_t>> runs_by_index;
    // Scheduling-index bookkeeping (owned by the TaskScheduler): FIFO
    // position, O(1) erase handle into task_sets_, ready-queue membership.
    std::uint64_t seq = 0;
    std::list<std::shared_ptr<ActiveSet>>::iterator self;
    bool in_ready = false;
    bool detached = false;
  };
  struct RunningTask {
    std::shared_ptr<ActiveSet> set;
    int index;
    ServerId server;
    int server_generation = 0;
    sim::EventId event;
    TaskMetrics metrics;
    TaskPlan plan;
    bool speculative = false;
    std::optional<TaskPlan::FetchFailure> fetch_failure;
    bool flaky_failure = false;
  };

  void launch(const std::shared_ptr<ActiveSet>& set, int index, ServerId s,
              bool node_local, bool speculative = false);
  void complete(std::uint64_t run_id);
  void fail(std::uint64_t run_id, TaskFailureKind kind);
  void finish_set_if_done(const std::shared_ptr<ActiveSet>& set);
  void requeue_with_backoff(const std::shared_ptr<ActiveSet>& set, int index);
  void abort_set(const std::shared_ptr<ActiveSet>& set,
                 const std::string& reason);
  void record_task_error(const std::shared_ptr<ActiveSet>& set, int index,
                         ServerId server);
  void charge_app_failure(ServerId server);
  void emit_retry(const ActiveSet& set, int index);
  void maybe_speculate(const std::shared_ptr<ActiveSet>& set);
  void discard_run(std::uint64_t run_id);  // cancel + release resources
  // Releases the run's driver-side accounting and, when the incarnation it
  // ran on is still alive, its physical core/working set.
  void release_run_resources(const RunningTask& run, std::uint64_t run_id);
  // Drops expired app-level exclusions (re-admission).
  void expire_exclusions();
  void arm_timer(SimTime at);
  // Recomputes offer_servers_ / offer_base_ / probe_launch_failure_. Must
  // run before offerable() / pick_remote_server(): once per scheduling
  // sweep and on entry to maybe_speculate(). The inputs (liveness,
  // reachability, driver admission) only change between sweeps —
  // failure-detection callbacks are deferred past the sweep — so one
  // evaluation per server replaces one per (task, server) offer; the
  // cluster topology epoch and admission epoch let the cache survive
  // whole sweeps untouched until something actually changes. App-level
  // exclusion is NOT cached (a verified read can quarantine an executor
  // mid-sweep); offerable() checks it live.
  void rebuild_offer_cache();
  // Rebuilds sweep_candidates_: offerable servers that still had a free
  // core when the current sweep started. Free cores only decrease within
  // a sweep (completions are events; launch-failure callbacks are
  // deferred), so servers skipped here could never accept a task anyway —
  // pick_remote_server() iterates this list instead of every offerable
  // server. Refresh alongside rebuild_offer_cache().
  void refresh_sweep_candidates();
  // Ready-queue maintenance: a set is "ready" while it has pending task
  // indices to offer. mark_ready is idempotent; call it wherever pending
  // goes empty -> non-empty (submit, backoff expiry, executor-lost requeue,
  // unpark).
  void mark_ready(const std::shared_ptr<ActiveSet>& set);
  void unready(ActiveSet& set);
  // Removes the set from every index (FIFO list, ready queue, job and
  // (job, stage) maps). Used when a set finishes or aborts.
  void detach_set(const std::shared_ptr<ActiveSet>& set);
  static std::uint64_t job_stage_key(JobId job, StageId stage) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(job)) << 32) |
           static_cast<std::uint32_t>(stage);
  }
  // One NODE_LOCAL + ANY offer round for a single set (the body of the
  // historical ready-scan loop). Returns true when at least one task
  // launched; the set may have drained its pending queue either way.
  bool offer_to_set(const std::shared_ptr<ActiveSet>& set, int& free_cores,
                    std::set<ServerId>& launch_failures);
  // Fair-share pick metric: running cores / weight for the tenant.
  double weighted_share(TenantId tenant) const noexcept;
  // Driver is willing to offer this server's slots to this task. Reads the
  // per-sweep offer cache for the set-independent half of the predicate;
  // callers must be downstream of rebuild_offer_cache().
  bool offerable(ServerId s, const ActiveSet& set, int index) const;
  ServerId pick_remote_server(const ActiveSet& set, int index,
                              ServerId exclude = kInvalidId);
  std::uint64_t collection_key(const BlockId& id) const;

  sim::Simulation* sim_;
  Cluster* cluster_;
  CostModel cost_;
  Options options_;
  NsOfDatasetFn ns_of_dataset_;
  std::function<bool(ServerId)> admission_;
  std::function<void(ServerId)> launch_failed_;
  FailureStats* stats_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  SlownessTracker* slowness_ = nullptr;
  std::function<bool(const BlockId&)> block_insert_filter_;

  std::list<std::shared_ptr<ActiveSet>> task_sets_;  // FIFO, all live sets
  // Sets with pending work, keyed by submission sequence so iteration
  // reproduces the FIFO scan order exactly while skipping the (usually
  // numerous) drained-but-running sets.
  std::map<std::uint64_t, std::shared_ptr<ActiveSet>> ready_;
  // Fair-share state. ready_by_tenant_ mirrors ready_ (same sets, bucketed
  // by TaskSet::tenant) and is maintained only when Options::fair_share —
  // the plain path never touches it. The core counters are kept in both
  // modes (pure accounting next to set->running updates).
  std::vector<std::map<std::uint64_t, std::shared_ptr<ActiveSet>>>
      ready_by_tenant_;
  std::vector<double> tenant_weight_;      // index = TenantId; empty slot = 1
  std::vector<int> tenant_running_cores_;  // index = TenantId
  // Secondary indexes so unpark / cancel_job touch only their own sets
  // instead of scanning every live one.
  std::unordered_map<std::uint64_t, std::vector<std::shared_ptr<ActiveSet>>>
      by_job_stage_;
  std::unordered_map<JobId, std::vector<std::shared_ptr<ActiveSet>>> by_job_;
  std::uint64_t next_set_seq_ = 0;
  std::unordered_map<std::uint64_t, RunningTask> running_;
  std::unordered_map<ServerId, std::unordered_set<std::uint64_t>> by_server_;
  // Results that finished on an unreachable (partitioned) executor; they
  // are delivered when the partition heals, unless the loss is detected
  // first.
  std::unordered_map<ServerId, std::vector<std::uint64_t>> deferred_;
  // App-level exclusion (spark.excludeOnFailure.application.*).
  std::unordered_map<ServerId, int> app_failures_;
  std::unordered_map<ServerId, SimTime> app_excluded_until_;
  // By-id mirror of app_excluded_until_'s keys: offerable() consults the
  // exclusion on every offer (it cannot be folded into the offer cache —
  // a verified read can quarantine mid-sweep), and a flat byte beats a
  // hash probe on that path. Sized lazily on first exclusion; empty means
  // no server was ever excluded.
  std::vector<char> app_excluded_mask_;
  std::unordered_map<ServerId, std::unordered_map<std::uint64_t, int>>
      contention_;
  // Per-sweep offer cache (see rebuild_offer_cache): servers passing the
  // set-independent checks in ascending-id order, a by-id bitmap of the
  // same, a by-id bitmap of dead-but-believed-alive servers the
  // NODE_LOCAL pass reports as failed launch RPCs, and a scratch buffer
  // for stock-Spark random placement (avoids a per-offer allocation).
  std::vector<ServerId> offer_servers_;
  std::vector<char> offer_base_;
  std::vector<char> probe_launch_failure_;
  std::vector<ServerId> pick_scratch_;
  std::vector<ServerId> sweep_candidates_;
  std::function<std::uint64_t()> admission_epoch_;
  std::uint64_t offer_cache_key_ = 0;
  bool offer_cache_valid_ = false;
  Rng placement_rng_;
  Rng flaky_rng_;
  double flaky_probability_ = 0.0;
  int active_net_flows_ = 0;
  int active_disk_flows_ = 0;
  int speculative_launches_ = 0;
  int speculative_wins_ = 0;
  bool speculation_suspended_ = false;
  int app_exclusions_ = 0;
  std::uint64_t next_run_id_ = 0;
  std::uint64_t tasks_completed_ = 0;
  SimTime driver_free_at_ = 0.0;
  bool timer_armed_ = false;
  SimTime timer_at_ = 0.0;
  bool in_schedule_ = false;
};

}  // namespace stark
