// CacheAdvisor: automatic lifetime-based cache management.
//
// The scheduler already knows everything a human placing cache()/uncache()
// calls reasons from — the submitted DAG, lineage refcounts, recompute-cost
// estimates — so the advisor closes the loop (ROADMAP "automatic
// lifetime-based cache management"; Lu et al., lifetime-based memory
// management; Yang et al., intermediate-data caching):
//
//  * Last-use analysis (kAutoFreeOnly and up). Every dataset referenced by
//    a stage chain carries a live-stage count, charged at stage build and
//    released when the stage truly completes (or its job aborts) — the same
//    once-per-stage discipline as the kLrc lineage refcounts. When the
//    count hits zero the dataset is dead in the submitted DAG; once it has
//    stayed dead for a grace period (so back-to-back session jobs do not
//    thrash) its cached footprint is dropped from every tier: RAM replicas,
//    the remote-memory pool and local spill copies.
//
//  * Cross-job reuse scoring. A decaying (DAMON-style, half-life
//    `decay_half_life`) score accumulates evidence that a dataset is reused
//    across jobs: +1 whenever a *different* job references it again, plus a
//    fractional bump per sampled cache read. Datasets whose total decayed
//    evidence sits above `protect_threshold` are never auto-freed — this is
//    what keeps ingested base collections cached while one-shot session
//    intermediates are reclaimed.
//
//  * Auto-cache selection (kFull). At job submit, uncached non-source
//    intermediates are ranked by expected_reuse x recompute_cost / size —
//    expected_reuse from this job's stage out-degree plus the cross-job
//    score, recompute_cost from the planner's lineage estimate — and the
//    top candidates are promoted (MEMORY_ONLY_SER) under a RAM-fraction
//    budget. Promoted blocks enter the cache through the ordinary task
//    completion path, so per-tenant quotas and the RAM->remote->disk
//    demotion chain apply unchanged.
//
// The advisor is pull-based: it acts inside submit / stage-release / job
// finish hooks and schedules no standing simulation events, so an idle
// simulation still drains (the MemoryPressureMonitor pattern). It is
// constructed only when AutoCacheOptions::enabled(); the default kManual
// build has no advisor and stays byte-identical.
#pragma once

#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/cluster.h"
#include "rdd/dataset.h"

namespace stark {

enum class AutoCacheMode {
  kManual,        // advisor off: cache()/uncache() calls are the whole story
  kAutoFreeOnly,  // reclaim dead cached datasets; never promote
  kFull,          // auto-free + auto-cache promotion under the RAM budget
};

const char* auto_cache_mode_name(AutoCacheMode mode);

struct AutoCacheOptions {
  AutoCacheMode mode = AutoCacheMode::kManual;
  // Fraction of aggregate cluster cache capacity auto-promoted datasets may
  // occupy (estimated at promotion time from dataset logical size).
  double ram_budget_fraction = 0.5;
  // At most this many datasets auto-cached at once.
  int max_auto_datasets = 64;
  // Promotion threshold on expected_reuse * recompute_cost / size
  // (seconds per byte, scaled by reuse). 0 admits every candidate with
  // reuse evidence that fits the budget.
  double min_score = 0.0;
  // Half-life (simulated seconds) of the decaying cross-job reuse score.
  double decay_half_life = 600.0;
  // Total decayed reuse evidence (cross-job score + sampled-read score) at
  // or above which a dead dataset is protected from auto-free. A one-shot
  // session intermediate peaks at ~2 (one cross-job reference + one full
  // read by the follow-up), so the default keeps anything referenced by at
  // least two independent consumers while session leftovers stay
  // reclaimable.
  double protect_threshold = 2.5;
  // A dataset must stay dead (no live stage references) this long before
  // its storage is reclaimed; re-references during the grace period cancel
  // the free. Bounds the cost of mispredicting a session's last job.
  double free_grace_seconds = 30.0;

  bool enabled() const noexcept { return mode != AutoCacheMode::kManual; }
  void validate() const;
};

// Advisor effectiveness counters (DagScheduler::auto_cache_stats(); all
// zero while the advisor is off).
struct AutoCacheStats {
  long long auto_caches = 0;       // datasets promoted into the cache
  long long auto_frees = 0;        // dead datasets reclaimed
  long long frees_deferred = 0;    // free attempts skipped on a pinned block
  long long frees_protected = 0;   // datasets kept by the reuse score
  long long reads_sampled = 0;     // cache reads folded into the sampler
  Bytes bytes_promoted = 0.0;      // estimated footprint of promotions
  Bytes bytes_freed = 0.0;         // stored bytes dropped across all tiers
  void reset() noexcept { *this = AutoCacheStats{}; }
};

class CacheAdvisor {
 public:
  // Recompute-cost estimate for a dataset (the DagScheduler's
  // lineage-based recompute_delay), used by the promotion ranking.
  using RecomputeCostFn = std::function<double(const Dataset&)>;
  // Fired on every promotion (promoted=true) and free (promoted=false)
  // with the dataset and the bytes involved; the DagScheduler uses it for
  // kAutoCache/kAutoFree trace instants and the re-insertion veto.
  using EventFn = std::function<void(DatasetId id, Bytes bytes, bool promoted)>;

  CacheAdvisor(Cluster& cluster, AutoCacheOptions options,
               RecomputeCostFn recompute_cost);

  void set_event_fn(EventFn fn) { event_fn_ = std::move(fn); }

  // A freshly built stage's chain references this dataset: bump its
  // live-stage count and fold cross-job reuse evidence when `job` differs
  // from the last referencing job. Called once per (stage, dataset).
  void on_stage_reference(const DatasetPtr& ds, JobId job, SimTime now);
  // The matching release, called exactly once per charged (stage, dataset)
  // when the stage truly completes or its job aborts. A count reaching
  // zero marks the dataset dead and queues it for the grace-period sweep.
  void on_stage_release(DatasetId id, SimTime now);
  // Access sampler feed: a task plan served this dataset's partition from
  // executor RAM (recency/frequency evidence against auto-freeing it).
  void on_block_read(const Dataset& ds, SimTime now);
  // Reclaim datasets dead past the grace period. Piggybacks on job submit
  // and job completion; never scheduled as a standing event.
  void sweep(SimTime now);
  // kFull only: rank this job's uncached intermediates and promote the top
  // candidates under the RAM budget. Returns the promoted datasets so the
  // caller can retro-charge lineage refcounts for already-built stages.
  std::vector<DatasetPtr> select_promotions(JobId job, SimTime now);

  const AutoCacheStats& stats() const noexcept { return stats_; }

  // Introspection for tests and benches.
  int live_stages(DatasetId id) const;
  // Decayed cross-job reuse score as of `now` (0 for unknown datasets).
  double reuse_score(DatasetId id, SimTime now) const;
  Bytes promotion_budget() const noexcept { return budget_; }
  Bytes promoted_bytes_live() const noexcept { return promoted_live_; }

 private:
  struct Entry {
    std::weak_ptr<Dataset> ds;
    int live_stages = 0;
    // Stage references charged by the current job (out-degree feed for the
    // promotion ranking; reset when a new job starts referencing).
    int refs_in_job = 0;
    JobId refs_job = kInvalidId;
    JobId last_job = kInvalidId;
    double score = 0.0;       // decayed cross-job reuse evidence
    double read_score = 0.0;  // decayed sampled-read evidence
    SimTime score_at = 0.0;   // last decay fold
    SimTime dead_since = 0.0;
    int num_partitions = 0;
    Bytes total_bytes = 0.0;
    bool auto_cached = false;
    Bytes promoted_bytes = 0.0;
    // frees_protected counts transitions, not sweeps: set when a sweep
    // first protects the dead dataset, cleared when it comes alive again.
    bool protect_counted = false;
  };

  void fold_decay(Entry& e, SimTime now) const;
  // Free the dead dataset's storage across all tiers unless it is
  // protected (reuse score) or deferred (pinned replica). Returns true
  // when the dataset was actually freed.
  bool try_free(DatasetId id, Entry& e, SimTime now);

  Cluster* cluster_;
  AutoCacheOptions options_;
  RecomputeCostFn recompute_cost_;
  EventFn event_fn_;
  std::unordered_map<DatasetId, Entry> entries_;
  // Dead cache-requested datasets awaiting their grace period.
  std::unordered_set<DatasetId> pending_free_;
  AutoCacheStats stats_;
  Bytes budget_ = 0.0;         // ram_budget_fraction * aggregate capacity
  Bytes promoted_live_ = 0.0;  // footprint of currently auto-cached datasets
  int auto_cached_count_ = 0;
};

}  // namespace stark
