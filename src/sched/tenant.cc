#include "sched/tenant.h"

#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace stark {

void MultiTenantOptions::validate() const {
  std::unordered_set<std::string> seen;
  for (const TenantOptions& t : tenants) {
    if (t.name.empty()) {
      throw std::invalid_argument(
          "MultiTenantOptions: tenant name must be non-empty (the empty "
          "name is reserved for the default tenant)");
    }
    if (!seen.insert(t.name).second) {
      throw std::invalid_argument("MultiTenantOptions: duplicate tenant \"" +
                                  t.name + "\"");
    }
    if (!(t.weight > 0.0) || !std::isfinite(t.weight)) {
      throw std::invalid_argument("MultiTenantOptions: tenant \"" + t.name +
                                  "\" weight must be positive and finite "
                                  "(got " +
                                  std::to_string(t.weight) + ")");
    }
    if (t.cache_quota < 0.0 || t.cache_quota > 1.0) {
      throw std::invalid_argument("MultiTenantOptions: tenant \"" + t.name +
                                  "\" cache_quota must be in [0, 1] (got " +
                                  std::to_string(t.cache_quota) + ")");
    }
    if (t.max_in_flight_jobs < 0) {
      throw std::invalid_argument("MultiTenantOptions: tenant \"" + t.name +
                                  "\" max_in_flight_jobs must be >= 0");
    }
    if (t.max_pending_jobs < 0) {
      throw std::invalid_argument("MultiTenantOptions: tenant \"" + t.name +
                                  "\" max_pending_jobs must be >= 0");
    }
  }
}

TenantRegistry::TenantRegistry() {
  tenants_.push_back(TenantOptions{});  // default tenant: id 0, empty name
  by_name_.emplace(std::string{}, 0);
}

TenantRegistry::TenantRegistry(const MultiTenantOptions& options)
    : TenantRegistry() {
  for (const TenantOptions& t : options.tenants) {
    const TenantId id = static_cast<TenantId>(tenants_.size());
    tenants_.push_back(t);
    by_name_.emplace(t.name, id);
  }
}

TenantId TenantRegistry::resolve(const std::string& name) {
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  const TenantId id = static_cast<TenantId>(tenants_.size());
  TenantOptions opts;
  opts.name = name;
  tenants_.push_back(std::move(opts));
  by_name_.emplace(name, id);
  return id;
}

TenantId TenantRegistry::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it != by_name_.end() ? it->second : kInvalidId;
}

}  // namespace stark
