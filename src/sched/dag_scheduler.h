// DagScheduler: jobs -> stages -> task sets, with Spark's recompute
// semantics.
//
// Key fidelity points (paper §II-B):
//  * Stages are cut at shuffle boundaries; shuffle map outputs persist and
//    are reused by later jobs, so a reused shuffle needs no new map stage.
//  * When a task runs on an executor that lacks its cached parent
//    partitions, it does NOT fetch remote cached blocks — it recomputes the
//    whole narrow chain from the stage origin (shuffle fetch / source read /
//    checkpoint read). This is the co-locality penalty Stark removes.
//  * Datasets marked cache() materialize on whichever executor computed
//    them, which is how delay scheduling grows replicas of hot collection
//    partitions.
//
// Failure semantics (MapOutputTracker + DAGScheduler resubmission):
//  * Map-output locations are tracked per shuffle. Losing an executor
//    invalidates the map outputs it hosted; reduce tasks that try to fetch
//    them raise FetchFailed, the reduce task parks, and the map stage is
//    resubmitted for just the lost units (bounded by max_stage_attempts).
//  * Exhausted task retries or stage attempts abort the job cleanly:
//    JobResult.completed=false with a failure_reason, callbacks still fire,
//    and any map stage another job was waiting on is re-homed so the other
//    job does not hang.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/cost_model.h"
#include "obs/tracer.h"
#include "sched/admission.h"
#include "sched/cache_advisor.h"
#include "sched/stage.h"
#include "sched/task.h"
#include "sched/tenant.h"
#include "sched/task_scheduler.h"
#include "sim/simulation.h"
#include "stark/group_manager.h"
#include "stark/locality_manager.h"

namespace stark {

struct DagOptions {
  // Consult LocalityManager homes as preferred locations (Stark configs).
  bool use_locality_homes = false;
  bool mcf = false;
  double locality_wait = 3.0;
  // Straggler mitigation via task copies (spark.speculation).
  bool speculation = false;
  // Whether ancestor partitions recomputed along a task's narrow chain are
  // registered as lasting cached replicas. Stark tracks them (its
  // LocalityManager bookkeeping turns hotspot recomputes into replicas,
  // §III-B/C3). Stock Spark, per the paper's §II-B premise, avoids "the
  // complexity and overhead of keeping track of all cached and evicted
  // data across the entire cluster" — recomputes stay transient, so the
  // co-locality penalty recurs on every job (Fig 2/3, Fig 11).
  bool replicate_on_recompute = true;
  // Keep per-task metrics inside JobResult (disable for huge sweeps).
  bool detail_task_metrics = true;
  // Retry / exclusion / resubmission knobs, shared with the TaskScheduler.
  FaultOptions faults;
  // Cache-policy interaction knobs, mirrored from ClusterConfig::cache by
  // api::Context (a bare DagScheduler must be handed the same values its
  // Cluster was built with): pin_running_blocks gates the planner's
  // referenced-block lists, policy == kCostSize gates per-block
  // recompute-cost estimation at insert time.
  CachePolicyOptions cache;
  // Overload protection: admission control, job deadlines and
  // pressure-scaled intake (sched/admission.h). Mirrored from
  // ContextOptions::overload by api::Context; all defaults off.
  OverloadOptions overload;
  // Multi-tenant configuration: fair-share scheduling, per-tenant weights,
  // cache quotas and admission overrides (sched/tenant.h). Mirrored from
  // ContextOptions::tenants by api::Context; the default (no tenants,
  // fair_share off) is byte-identical to a single-tenant build.
  MultiTenantOptions tenants;
  // Automatic lifetime-based cache management (sched/cache_advisor.h):
  // last-use auto-free and reuse-ranked auto-cache promotion. Mirrored
  // from ContextOptions::auto_cache by api::Context; the default kManual
  // constructs no advisor and is byte-identical.
  AutoCacheOptions auto_cache;
};

// Cache-policy effectiveness counters, accumulated by the task planner's
// cache probes. Only cache-requested datasets count — uncached
// intermediates are expected to recompute. `hits` are recomputes avoided;
// under memory pressure the `bytes_recomputed` delta between eviction
// policies is the headline ablation number (bench_ablation_cache_policy).
struct CacheStats {
  long long hits = 0;       // probes served from executor RAM
  long long misses = 0;     // probes that found no usable replica
  long long recomputes = 0; // misses that fell through to lineage recompute
  // Remote-memory tier (cluster/remote_memory.h); all zero with it off.
  long long remote_hits = 0;  // RAM misses served from the remote pool
  long long fault_backs = 0;  // lower-tier hits promoted back into RAM
  Bytes bytes_from_cache = 0.0;  // logical bytes served by hits
  Bytes bytes_from_remote = 0.0;  // stored bytes served by remote hits
  Bytes bytes_recomputed = 0.0;  // logical bytes rebuilt via lineage
  // All-dataset recompute accounting (the auto-cache advisor's headline):
  // unlike `recomputes`/`bytes_recomputed` above, these also count
  // intermediates nobody asked to cache — exactly the work auto-caching
  // can remove. Source reads are loads, not recomputes, and are excluded.
  long long recomputes_all = 0;
  Bytes bytes_recomputed_all = 0.0;
  void reset() noexcept { *this = CacheStats{}; }
};

class DagScheduler {
 public:
  DagScheduler(sim::Simulation& sim, Cluster& cluster, const CostModel& cost,
               LocalityManager& locality, GroupManager& groups,
               DagOptions options);

  // Asynchronous submission; cb fires when the job completes — including
  // jobs the overload layer refuses (JobStatus::kRejected / kShed, whose
  // callbacks fire synchronously inside submit) and jobs cancelled by
  // their deadline (kDeadlineExceeded). `opts` selects the tenant the job
  // runs as, its admission lane/priority and a per-job deadline; the
  // default SubmitOptions reproduce the historical bare submit exactly.
  JobId submit(DatasetPtr final, ActionType action, SubmitOptions opts = {},
               JobCallback cb = {});

  // Legacy positional form: the app string doubled as the admission queue
  // key. It now maps onto SubmitOptions::tenant (same partition, same
  // limits), so behavior is unchanged — but migrate to the options form.
  [[deprecated(
      "pass SubmitOptions{.tenant = ...} (and a callback) instead of the "
      "positional app string")]]
  JobId submit(DatasetPtr final, ActionType action, JobCallback cb,
               std::string app = {});

  // Submit and run the simulation until this job completes.
  JobResult run_job(DatasetPtr final, ActionType action = ActionType::kCount);

  bool job_done(JobId id) const;
  const JobResult& result(JobId id) const;
  int jobs_completed() const noexcept { return jobs_completed_; }
  // Jobs submitted but not yet finished or aborted (0 once a run drains).
  int active_jobs() const noexcept { return static_cast<int>(jobs_.size()); }

  // --- checkpointing -------------------------------------------------------
  // Persists the dataset now (forceCheckpoint, paper §III-E): records the
  // serialized size and anchors future recovery at this dataset.
  void checkpoint_now(const DatasetPtr& ds);
  bool is_checkpointed(DatasetId id) const noexcept;
  Bytes total_checkpoint_bytes() const noexcept { return checkpoint_bytes_; }
  // c(v): what checkpointing would write for this dataset.
  Bytes checkpoint_cost(const Dataset& ds) const;
  // d(v): recovery delay of recomputing this one dataset (max across
  // partitions), inputs assumed available.
  double recompute_delay(const Dataset& ds) const;

  // Estimated failure-recovery delay for a dataset: longest recompute chain
  // from checkpoint/shuffle/source anchors (used by tests and benches).
  double estimate_recovery_delay(const DatasetPtr& ds) const;

  bool shuffle_materialized(const ShuffleKey& key) const;
  // Total bytes written as shuffle map outputs so far.
  Bytes total_shuffle_bytes_written() const noexcept { return shuffle_bytes_; }

  // Failure oracle used by tests: kill the server physically AND tell the
  // driver immediately (zero detection latency). The production path goes
  // through the FailureDetector, which calls on_executor_lost() only after
  // the heartbeat timeout.
  void handle_server_failure(ServerId s);

  // The driver declared this executor lost (heartbeat timeout, or a new
  // incarnation registered). Requeues its tasks, drops its locality homes
  // and invalidates the shuffle map outputs it hosted.
  void on_executor_lost(ServerId s, double detection_latency);

  // Cumulative failure-machinery counters (feed MetricsCollector).
  const FailureStats& failure_stats() const noexcept { return stats_; }
  void reset_failure_stats() noexcept { stats_.reset(); }

  // Cumulative cache-probe counters (feed MetricsCollector and the
  // cache-policy ablation bench).
  const CacheStats& cache_stats() const noexcept { return cache_stats_; }
  void reset_cache_stats() noexcept { cache_stats_.reset(); }

  // --- overload protection --------------------------------------------------
  // Cumulative admission/deadline/pressure counters (feed MetricsCollector
  // and bench_overload).
  const OverloadStats& overload_stats() const noexcept {
    return overload_stats_;
  }
  void reset_overload_stats() noexcept { overload_stats_.reset(); }
  // Memory-pressure source, polled on every submit and job completion.
  // Null (the default) reads as permanently Green. api::Context wires it
  // to a MemoryPressureMonitor when overload.pressure.enabled.
  void set_pressure_fn(std::function<PressureBand()> fn) {
    pressure_fn_ = std::move(fn);
  }
  // Band as of the last poll (Green before the first).
  PressureBand pressure_band() const noexcept { return last_band_; }
  // Admission introspection for tests and benches.
  const AdmissionController& admission() const noexcept { return admission_; }

  // --- multi-tenancy --------------------------------------------------------
  // Name <-> id mapping and per-tenant options (configured + auto-registered).
  const TenantRegistry& tenants() const noexcept { return tenants_; }
  // Per-tenant overload counters, indexed by TenantId (entries appear as
  // tenants submit; index 0 is the default tenant). The global
  // overload_stats() remains the sum over tenants.
  const std::vector<OverloadStats>& tenant_overload_stats() const noexcept {
    return tenant_overload_;
  }

  // --- fail-slow fault domain ----------------------------------------------
  // Scorecards + hedge counters; a zero struct while
  // faults.slowness.enabled is off (no tracker is constructed then).
  const SlownessStats& slowness_stats() const noexcept {
    static const SlownessStats kEmpty{};
    return slowness_ ? slowness_->stats() : kEmpty;
  }
  // Believed band for a server (kHealthy when the feature is off). Benches
  // compare this against ground-truth degradation to count undetected
  // slow peers.
  SlowBand slowness_band(ServerId s) const noexcept {
    return slowness_ ? slowness_->band(s) : SlowBand::kHealthy;
  }
  SlownessTracker* slowness() noexcept { return slowness_.get(); }

  // --- automatic cache management -------------------------------------------
  // Advisor counters; a zero struct while auto_cache.mode == kManual (no
  // advisor is constructed then).
  const AutoCacheStats& auto_cache_stats() const noexcept {
    static const AutoCacheStats kEmpty{};
    return advisor_ ? advisor_->stats() : kEmpty;
  }
  CacheAdvisor* cache_advisor() noexcept { return advisor_.get(); }
  // Retire a dataset now: uncache() plus drop every replica in every tier
  // (RAM, remote pool, local spill), and veto re-insertion by lineage
  // recomputes still in flight — without the veto a recomputed partition
  // lands back in the dead dataset's cache and leaks until evicted. The
  // veto lifts automatically if a later job references the dataset again.
  // Returns the stored bytes dropped. The advisor's auto-free path shares
  // this veto; pass a manually-freed dataset here instead of calling
  // Dataset::uncache() directly when tasks may be running.
  Bytes retire_dataset(const DatasetPtr& ds);
  bool dataset_retired(DatasetId id) const {
    return retired_.contains(id);
  }

  // --- silent-data-corruption faults ---------------------------------------
  // Flip the checksum tag on one stored copy (cached replica, spilled copy,
  // or shuffle map-output unit). Returns false when no live copy exists.
  // Detection happens later, on a verified read (faults.verify_reads); with
  // verification off the corrupt copy is served silently and counted in
  // FailureStats::corrupt_reads_undetected.
  bool corrupt_cached_block(ServerId s, const BlockId& id);
  bool corrupt_spilled_block(ServerId s, const BlockId& id);
  // Remote-memory pool copy; the detection charge lands on the copy's
  // origin server (the executor that wrote it).
  bool corrupt_remote_block(const BlockId& id);
  bool corrupt_shuffle_output(const ShuffleKey& key, int unit);

  // Healthy, not-yet-corrupted shuffle map-output units, sorted by
  // (child, dep_index, unit) so fault injectors enumerating them stay
  // deterministic across runs.
  struct ShuffleOutputRef {
    ShuffleKey key;
    int unit = -1;
    ServerId host = kInvalidId;
  };
  std::vector<ShuffleOutputRef> live_shuffle_outputs() const;

  TaskScheduler& tasks() noexcept { return task_scheduler_; }
  sim::Simulation& sim() noexcept { return *sim_; }
  Cluster& cluster() noexcept { return *cluster_; }
  const CostModel& cost_model() const noexcept { return cost_; }

  // Structured tracing (stage submit/complete/resubmit, job lifecycle,
  // cache hit/miss from the task planner). Propagates to the TaskScheduler.
  // Null or disabled costs one pointer test per choke point.
  void set_tracer(obs::Tracer* tracer) noexcept {
    tracer_ = tracer;
    task_scheduler_.set_tracer(tracer);
  }

 private:
  struct Job;
  struct StageRun {
    StageId id = kInvalidId;
    Job* job = nullptr;
    DatasetPtr boundary;
    StageChain chain;
    std::optional<ShuffleEdge> output;  // set for shuffle-map stages
    int waiting_parents = 0;
    bool launched = false;
    // Consecutive attempts (spark.stage.maxConsecutiveAttempts): bumped on
    // fetch-failure rounds (reduce side) and on relaunches for lost map
    // outputs (map side).
    int attempts = 0;
    // Task index in the current task set -> unit position in the shuffle's
    // map-output vector (partial resubmissions launch a subset of units).
    std::vector<int> task_unit_pos;
    // Per-stage phase totals, accumulated as tasks finish and copied into
    // JobResult::stages when the job ends.
    StageBreakdown breakdown;
    // Cached datasets this stage's chain holds a lineage refcount on (kLrc
    // feed); charged at build, released exactly once at true completion or
    // job abort (relaunches for lost map outputs keep the charge).
    std::vector<DatasetId> lineage_charged;
    // Every chain dataset's advisor live-stage charge (last-use analysis);
    // same charge/release discipline as lineage_charged, but covering
    // uncached datasets too. Empty unless the advisor is constructed.
    std::vector<DatasetId> advisor_charged;
  };
  struct Job {
    JobId id = kInvalidId;
    ActionType action = ActionType::kCount;
    DatasetPtr final;
    JobCallback cb;
    JobResult result;
    std::vector<std::unique_ptr<StageRun>> stages;
    int stages_remaining = 0;
    bool done = false;
    // Overload bookkeeping: the tenant/lane the job was submitted under
    // (together the admission key), its queue priority and per-job
    // deadline, whether it currently sits in a pending queue, and whether
    // it was dispatched (and so holds an in-flight slot to release).
    TenantId tenant = 0;
    std::string lane;
    int priority = 0;
    double deadline_seconds = 0.0;
    bool queued = false;
    bool dispatched = false;

    AdmissionKey admission_key() const { return AdmissionKey{tenant, lane}; }
  };

  // Dispatch a job past admission: build its stages and launch what is
  // ready (the pre-overload submit() body).
  void start_job(Job& job);
  // Close a job that never dispatched (rejected, shed, or deadline-expired
  // while queued): zero stages, finish_time == submit_time == now of close.
  void close_undispatched(Job& job, JobStatus status, std::string reason);
  // Deadline machinery. Events live in deadline_events_; an entry is erased
  // by whichever of {handler fired, job finished, job aborted} comes first,
  // so a recycled EventId is never cancelled by mistake.
  void arm_deadline(Job& job);
  void cancel_deadline(JobId id);
  void on_deadline(JobId id);
  // Poll the pressure signal; on a band change, count the transition, trace
  // it, and toggle the task scheduler's degrade mode.
  PressureBand sample_pressure();
  // Release the job's admission slot (if it held one); called on every
  // close path before the callback fires.
  void release_admission_slot(Job& job);
  // Dispatch queued jobs while capacity allows (called after closes).
  void drain_admission_queue();
  void emit_admission_verdict(const Job& job, AdmissionVerdict verdict);
  // The per-tenant counter slot, grown on demand.
  OverloadStats& tenant_stats(TenantId tenant);

  StageRun* build_stage(Job& job, const DatasetPtr& boundary,
                        std::optional<ShuffleEdge> output);
  void maybe_launch(StageRun& stage);
  void on_stage_complete(StageRun& stage);
  void collect_stage_breakdowns(Job& job);
  void finish_job(Job& job);
  // Terminates the job with completed=false; cancels its task sets, purges
  // its waiter registrations, and re-homes any map stage other jobs were
  // waiting on. `status` records why (kFailed, or kDeadlineExceeded when
  // the whole-job deadline drove the cancel).
  void abort_job(Job& job, const std::string& reason,
                 JobStatus status = JobStatus::kFailed);
  TaskFailureAction on_task_failed(StageRun& stage, const TaskSpec& task,
                                   const TaskFailure& failure);
  // Builds (or rebuilds) the map stage for `key` under `owner` and launches
  // whatever became ready.
  void rebuild_shuffle(const ShuffleKey& key, Job& owner);
  // The map-output host is usable for fetches right now.
  bool output_host_healthy(ServerId s) const;
  // Every registered output of the shuffle sits on a live, reachable host.
  bool shuffle_healthy(const ShuffleKey& key) const;
  std::vector<ServerId> preferred_servers(const StageRun& stage, int unit_id,
                                          int lo, int hi);
  TaskPlan plan_task(const StageRun& stage, const TaskSpec& task,
                     ServerId server);
  void plan_chain(const DatasetPtr& ds, int partition, ServerId server,
                  DatasetId boundary_id, TaskPlan& plan);
  // Promote a lower-tier hit (remote pool / local spill) back into the
  // executor's RAM cache when this plan's task lands. No-op unless the
  // remote tier is enabled, so the default engine stays byte-identical.
  void fault_back(const DatasetPtr& ds, int partition, ServerId server,
                  DatasetId boundary_id, Bytes stored, MemoryTier found_in,
                  TaskPlan& plan);
  // d(v) for one partition (recompute_delay is the max across partitions);
  // also the kCostSize policy's per-block recompute-cost estimate.
  double recompute_delay_partition(const Dataset& ds, std::size_t p) const;
  // Decrements the lineage refcounts build_stage charged; idempotent.
  // Also releases the advisor's live-stage charges (last-use analysis).
  void release_lineage_refcounts(StageRun& stage);
  // Lazily hands the TaskScheduler the retired-dataset veto; until the
  // first retirement the filter stays null and the completion path is
  // untouched (byte-identity).
  void install_insert_filter();
  double recovery_chain_delay(const DatasetPtr& ds, int partition) const;
  // Corrupt-flag vector for a shuffle, resized to n units on demand.
  std::vector<char>& corrupt_flags(const ShuffleKey& key, std::size_t n);
  void clear_corrupt_flag(const ShuffleKey& key, std::size_t unit);
  // Detection bookkeeping shared by the cache probe, spill read and fetch
  // paths: counter, quarantine charge, trace event.
  void note_corruption_detected(ServerId host, DatasetId dataset,
                                int partition, Bytes bytes, bool shuffle);
  void emit_corruption_event(obs::TraceKind kind, ServerId host,
                             DatasetId dataset, int partition, Bytes bytes,
                             bool shuffle);
  // Fail-slow fetch modeling (only when slowness_ is constructed): stretch
  // the plan's fetch phase by the slowest map-output source host, decide
  // whether to hedge the lagging slice under the tenant's byte budget, and
  // record the per-source ratios the completion path feeds the scorecards.
  void apply_source_slowness(const StageRun& stage, const TaskSpec& task,
                             double net_factor, TaskPlan& plan);
  // Per-tenant hedge budget slot, grown on demand (tenant ids are dense).
  struct HedgeBudget {
    Bytes fetched = 0.0;  // cumulative bytes the tenant fetched
    Bytes hedged = 0.0;   // cumulative duplicated bytes issued
  };
  HedgeBudget& hedge_budget(TenantId tenant);

  sim::Simulation* sim_;
  Cluster* cluster_;
  CostModel cost_;
  LocalityManager* locality_;
  GroupManager* groups_;
  DagOptions options_;
  TaskScheduler task_scheduler_;
  obs::Tracer* tracer_ = nullptr;

  std::unordered_map<JobId, std::unique_ptr<Job>> jobs_;
  std::unordered_map<JobId, JobResult> results_;
  std::unordered_set<ShuffleKey, ShuffleKeyHash> shuffle_done_;
  // Shuffles with a map stage built (possibly by another job) but not yet
  // materialized, with the stages waiting on them.
  std::unordered_map<ShuffleKey, std::vector<StageRun*>, ShuffleKeyHash>
      shuffle_waiters_;
  std::unordered_set<ShuffleKey, ShuffleKeyHash> shuffle_building_;
  // MapOutputTracker: which executor hosts each map unit's output
  // (kInvalidId = lost / never built). Sized per shuffle at map launch.
  std::unordered_map<ShuffleKey, std::vector<ServerId>, ShuffleKeyHash>
      map_outputs_;
  // Producer edge for each shuffle ever built, for resubmission.
  std::unordered_map<ShuffleKey, ShuffleEdge, ShuffleKeyHash> shuffle_edges_;
  // Launched reduce stages parked on a FetchFailed shuffle; unparked when
  // the resubmitted map stage completes.
  std::unordered_map<ShuffleKey, std::vector<StageRun*>, ShuffleKeyHash>
      fetch_waiters_;
  // Integrity shadow of map_outputs_: nonzero means the unit's stored
  // output has a bad checksum tag. Cleared whenever the unit is
  // (re)registered or its host entry is invalidated.
  std::unordered_map<ShuffleKey, std::vector<char>, ShuffleKeyHash>
      map_output_corrupt_;
  // Detected-corrupt identities awaiting a clean rewrite; a later block
  // insert / map-output registration counts as corruptions_repaired.
  std::unordered_set<BlockId, BlockIdHash> pending_block_repair_;
  std::unordered_map<ShuffleKey, std::unordered_set<int>, ShuffleKeyHash>
      pending_shuffle_repair_;
  FailureStats stats_;
  CacheStats cache_stats_;
  // Fail-slow scorecards; constructed only when faults.slowness.enabled
  // (the tracker also feeds the TaskScheduler's placement and timeouts).
  std::unique_ptr<SlownessTracker> slowness_;
  // Automatic cache management; constructed only when auto_cache.enabled().
  std::unique_ptr<CacheAdvisor> advisor_;
  // Datasets freed while tasks may still be recomputing their partitions:
  // the TaskScheduler's insert filter vetoes re-insertion (the
  // uncache-during-recompute race). Entries leave when a new job's
  // build_stage references the dataset again.
  std::unordered_set<DatasetId> retired_;
  bool insert_filter_installed_ = false;
  std::vector<HedgeBudget> hedge_budget_;
  std::vector<ServerId> hedge_hosts_scratch_;  // distinct source hosts
  // Overload protection (all inert while DagOptions::overload defaults).
  AdmissionController admission_;
  OverloadStats overload_stats_;
  TenantRegistry tenants_;
  // Per-tenant overload counters; grown lazily by tenant_stats().
  std::vector<OverloadStats> tenant_overload_;
  std::function<PressureBand()> pressure_fn_;
  PressureBand last_band_ = PressureBand::kGreen;
  std::unordered_map<JobId, sim::EventId> deadline_events_;
  bool draining_admission_ = false;
  std::unordered_map<DatasetId, Bytes> checkpointed_;
  Bytes checkpoint_bytes_ = 0.0;
  Bytes shuffle_bytes_ = 0.0;
  JobId next_job_id_ = 0;
  StageId next_stage_id_ = 0;
  int jobs_completed_ = 0;
};

}  // namespace stark
