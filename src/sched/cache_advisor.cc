#include "sched/cache_advisor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace stark {

namespace {

[[noreturn]] void reject(const std::string& what) {
  throw std::invalid_argument("AutoCacheOptions: " + what);
}

}  // namespace

const char* auto_cache_mode_name(AutoCacheMode mode) {
  switch (mode) {
    case AutoCacheMode::kManual: return "manual";
    case AutoCacheMode::kAutoFreeOnly: return "auto-free-only";
    case AutoCacheMode::kFull: return "full";
  }
  return "unknown";
}

void AutoCacheOptions::validate() const {
  if (ram_budget_fraction < 0.0 || ram_budget_fraction > 1.0) {
    reject("ram_budget_fraction must be in [0, 1] (got " +
           std::to_string(ram_budget_fraction) + ")");
  }
  if (max_auto_datasets < 0) {
    reject("max_auto_datasets must be >= 0 (got " +
           std::to_string(max_auto_datasets) + ")");
  }
  if (min_score < 0.0) {
    reject("min_score must be >= 0 (got " + std::to_string(min_score) + ")");
  }
  if (decay_half_life <= 0.0) {
    reject("decay_half_life must be positive (got " +
           std::to_string(decay_half_life) + ")");
  }
  if (protect_threshold < 0.0) {
    reject("protect_threshold must be >= 0 (got " +
           std::to_string(protect_threshold) + ")");
  }
  if (free_grace_seconds < 0.0) {
    reject("free_grace_seconds must be >= 0 (got " +
           std::to_string(free_grace_seconds) + ")");
  }
}

CacheAdvisor::CacheAdvisor(Cluster& cluster, AutoCacheOptions options,
                           RecomputeCostFn recompute_cost)
    : cluster_(&cluster),
      options_(options),
      recompute_cost_(std::move(recompute_cost)) {
  options_.validate();
  // The promotion budget is a fraction of the aggregate RAM cache across
  // all executors, snapshotted at construction (server capacity is fixed
  // for a run).
  Bytes capacity = 0.0;
  for (int s = 0; s < cluster_->size(); ++s) {
    capacity += cluster_->server(s).storage().capacity();
  }
  budget_ = capacity * options_.ram_budget_fraction;
}

void CacheAdvisor::fold_decay(Entry& e, SimTime now) const {
  if (now <= e.score_at) return;
  const double f = std::exp2(-(now - e.score_at) / options_.decay_half_life);
  e.score *= f;
  e.read_score *= f;
  e.score_at = now;
}

void CacheAdvisor::on_stage_reference(const DatasetPtr& ds, JobId job,
                                      SimTime now) {
  Entry& e = entries_[ds->id()];
  if (e.num_partitions == 0) {
    e.num_partitions = ds->num_partitions();
    e.total_bytes = ds->total_bytes();
    e.score_at = now;
  }
  e.ds = ds;
  if (job != e.refs_job) {
    fold_decay(e, now);
    // Cross-job reuse evidence: a *different* job coming back for this
    // dataset is the signal that freeing it would cost a recompute soon.
    if (e.last_job != kInvalidId && job != e.last_job) e.score += 1.0;
    e.last_job = job;
    e.refs_job = job;
    e.refs_in_job = 0;
  }
  ++e.live_stages;
  ++e.refs_in_job;
  // Alive again: cancel any queued free and reset the protection tally.
  pending_free_.erase(ds->id());
  e.protect_counted = false;
}

void CacheAdvisor::on_stage_release(DatasetId id, SimTime now) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return;
  Entry& e = it->second;
  if (e.live_stages <= 0) return;
  if (--e.live_stages > 0) return;
  // Last consuming stage completed: the dataset is dead in the submitted
  // DAG. Queue cached footprints for the grace-period sweep (an expired
  // weak_ptr means the application dropped its handle — any blocks it left
  // behind are unreachable and equally reclaimable).
  e.dead_since = now;
  const DatasetPtr ds = e.ds.lock();
  if (ds == nullptr || ds->cache_requested()) pending_free_.insert(id);
}

void CacheAdvisor::on_block_read(const Dataset& ds, SimTime now) {
  const auto it = entries_.find(ds.id());
  if (it == entries_.end()) return;
  Entry& e = it->second;
  fold_decay(e, now);
  // One full scan of the dataset contributes ~1 to the read score.
  e.read_score += 1.0 / static_cast<double>(std::max(1, e.num_partitions));
  ++stats_.reads_sampled;
}

void CacheAdvisor::sweep(SimTime now) {
  if (pending_free_.empty()) return;
  // Sorted snapshot: try_free mutates pending_free_, and dataset-id order
  // keeps the free sequence deterministic and independent of hash layout.
  std::vector<DatasetId> ids(pending_free_.begin(), pending_free_.end());
  std::sort(ids.begin(), ids.end());
  for (const DatasetId id : ids) {
    const auto it = entries_.find(id);
    if (it == entries_.end()) {
      pending_free_.erase(id);
      continue;
    }
    Entry& e = it->second;
    if (e.live_stages > 0) {
      pending_free_.erase(id);
      continue;
    }
    if (now - e.dead_since < options_.free_grace_seconds) continue;
    try_free(id, e, now);
  }
}

bool CacheAdvisor::try_free(DatasetId id, Entry& e, SimTime now) {
  fold_decay(e, now);
  if (e.score + e.read_score >= options_.protect_threshold) {
    // Hot by the reuse sampler: keep it cached. The entry stays queued —
    // if the evidence decays without fresh references, a later sweep
    // reclaims it.
    if (!e.protect_counted) {
      ++stats_.frees_protected;
      e.protect_counted = true;
    }
    return false;
  }
  // Never drop a block a running task pinned (speculative duplicates and
  // parked resubmissions hold pins until their run resources release);
  // stay queued and retry on a later sweep.
  for (int p = 0; p < e.num_partitions; ++p) {
    const BlockId bid{id, p};
    for (const ServerId s : cluster_->cache_locations(bid)) {
      if (cluster_->server(s).storage().pin_count(bid) > 0) {
        ++stats_.frees_deferred;
        return false;
      }
    }
  }
  Bytes dropped = 0.0;
  for (int p = 0; p < e.num_partitions; ++p) {
    const BlockId bid{id, p};
    for (const ServerId s : cluster_->cache_locations(bid)) {
      dropped += cluster_->server(s).storage().block_bytes(bid);
    }
    if (cluster_->remote_memory_enabled() && cluster_->remote_cached(bid)) {
      dropped += cluster_->remote_block_bytes(bid);
    }
    for (ServerId s = 0; s < cluster_->size(); ++s) {
      dropped += cluster_->disk_block_bytes(s, bid);
    }
    // Drops RAM replicas, spilled copies and the remote-pool copy alike.
    cluster_->remove_block_everywhere(bid);
  }
  if (const DatasetPtr ds = e.ds.lock()) ds->uncache();
  if (e.auto_cached) {
    promoted_live_ -= e.promoted_bytes;
    --auto_cached_count_;
    e.auto_cached = false;
    e.promoted_bytes = 0.0;
  }
  ++stats_.auto_frees;
  stats_.bytes_freed += dropped;
  pending_free_.erase(id);
  if (event_fn_) event_fn_(id, dropped, /*promoted=*/false);
  return true;
}

std::vector<DatasetPtr> CacheAdvisor::select_promotions(JobId job,
                                                        SimTime now) {
  struct Candidate {
    double score = 0.0;
    DatasetId id = kInvalidId;
    DatasetPtr ds;
  };
  std::vector<Candidate> ranked;
  for (auto& [id, e] : entries_) {
    if (e.refs_job != job) continue;
    DatasetPtr ds = e.ds.lock();
    // Sources re-read from their natural home (disk); caching them buys
    // less than caching the transforms derived from them.
    if (ds == nullptr || ds->cache_requested() || ds->op() == Op::kSource) {
      continue;
    }
    fold_decay(e, now);
    // Out-degree within this job (a dataset two stages read is computed
    // once and reused) plus decayed cross-job reuse.
    const double reuse =
        static_cast<double>(e.refs_in_job - 1) + e.score + e.read_score;
    if (reuse < 1.0) continue;
    const double cost = recompute_cost_ ? recompute_cost_(*ds) : 0.0;
    const double score = reuse * cost / std::max(1.0, e.total_bytes);
    if (score <= 0.0 || score < options_.min_score) continue;
    ranked.push_back({score, id, std::move(ds)});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.id < b.id;  // deterministic tie-break
            });
  std::vector<DatasetPtr> promoted;
  for (Candidate& c : ranked) {
    if (auto_cached_count_ >= options_.max_auto_datasets) break;
    Entry& e = entries_.at(c.id);
    const Bytes footprint = e.total_bytes;
    // Skip over budget rather than stop: a smaller candidate further down
    // the ranking may still fit.
    if (promoted_live_ + footprint > budget_) continue;
    // Serialized by default: promotions trade deserialization CPU for the
    // smallest RAM footprint, like the session caches they replace.
    c.ds->cache(Dataset::StorageLevel::kMemorySerialized);
    e.auto_cached = true;
    e.promoted_bytes = footprint;
    promoted_live_ += footprint;
    ++auto_cached_count_;
    ++stats_.auto_caches;
    stats_.bytes_promoted += footprint;
    if (event_fn_) event_fn_(c.id, footprint, /*promoted=*/true);
    promoted.push_back(std::move(c.ds));
  }
  return promoted;
}

int CacheAdvisor::live_stages(DatasetId id) const {
  const auto it = entries_.find(id);
  return it == entries_.end() ? 0 : it->second.live_stages;
}

double CacheAdvisor::reuse_score(DatasetId id, SimTime now) const {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return 0.0;
  Entry e = it->second;  // fold on a copy; the query must not mutate
  fold_decay(e, now);
  return e.score + e.read_score;
}

}  // namespace stark
