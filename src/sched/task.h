// Scheduler-internal task records and fault-tolerance knobs.
//
// The user-facing half of the job contract (ActionType, TaskMetrics,
// StageBreakdown, JobResult, JobCallback) lives in api/job.h.
#pragma once

#include <string>
#include <vector>

#include "api/job.h"
#include "cluster/slowness.h"
#include "common/types.h"

namespace stark {

// How a task's placement related to its preferred executors.
enum class LocalityLevel { kNodeLocal, kAny };

// Why a task run did not produce a result.
enum class TaskFailureKind {
  kExecutorLost,  // the executor died / was declared lost mid-run
  kTaskError,     // the task itself crashed (flaky task, OOM, bad record)
  kFetchFailed,   // a shuffle fetch from a map-output host failed
};

// Fault-tolerance knobs shared by the failure detector and both schedulers.
// Defaults mirror Spark's (spark.task.maxFailures=4, excludeOnFailure
// thresholds, stage.maxConsecutiveAttempts=4), with heartbeat times scaled
// to the simulator's sub-second task durations.
struct FaultOptions {
  // Heartbeat-based failure detection (spark.executor.heartbeatInterval /
  // spark.network.timeout). The driver only learns of a crash or partition
  // once the timeout expires on its check grid.
  double heartbeat_interval = 1.0;
  double heartbeat_timeout = 5.0;
  // Task-level retries with exponential backoff; exhausting them aborts the
  // job cleanly instead of hanging.
  int max_task_failures = 4;
  double retry_backoff = 0.25;     // base delay; doubles per prior failure
  double retry_backoff_max = 8.0;  // cap on the backoff delay
  // Fetch-failure handling: a reduce task burns this long discovering that
  // a map-output host is gone (connection retries), then raises FetchFailed
  // and the map stage is resubmitted, at most max_stage_attempts times.
  int max_stage_attempts = 4;
  double fetch_fail_seconds = 0.5;
  // Executor exclusion (spark.excludeOnFailure.*): per-task, per-stage and
  // application-wide failure counters with timed re-admission.
  bool exclude_on_failure = true;
  int max_task_attempts_per_executor = 1;
  int max_failures_per_executor_stage = 2;
  int max_failures_per_executor = 2;
  double exclude_timeout = 60.0;
  // Integrity verification (spark.shuffle.checksum.enabled generalized to
  // every stored copy). When on, the cache probe, the spill read and the
  // reduce-side fetch re-verify block checksums, paying
  // CostModel::checksum_bw per byte; a mismatch becomes a cache miss
  // (lineage recompute) or a FetchFailed (map-stage resubmission) instead
  // of a silent wrong result. Off by default: verification must be
  // zero-cost and bit-identical to a build without it.
  bool verify_reads = false;
  // Charge detected corruptions to the hosting executor's app-level
  // excludeOnFailure budget, so a bad-disk server is quarantined rather
  // than re-poisoning every retry. Only meaningful with exclude_on_failure.
  bool quarantine_on_corruption = true;
  // Fail-slow fault domain (cluster/slowness.h): latency scorecards that
  // classify peers Healthy/Suspect/Degraded, adaptive fetch timeouts
  // replacing fetch_fail_seconds, hedged fetches under a per-tenant byte
  // budget, and Degraded-peer placement deprioritization. This is a
  // separate track from the fail-stop exclusion knobs above: a slow peer
  // is never charged task failures. Off by default (byte-identical).
  SlownessOptions slowness;
};

// Cluster-wide failure machinery counters, surfaced via MetricsCollector.
struct FailureStats {
  int heartbeat_detections = 0;      // executor losses declared by timeout
  double detection_latency_sum = 0;  // actual death -> driver declaration
  int task_failures = 0;             // failed task runs, all causes
  int task_retries = 0;              // failed tasks requeued for another try
  int fetch_failures = 0;            // FetchFailed raised by reduce tasks
  int stage_resubmissions = 0;       // map stages resubmitted for lost output
  int executor_exclusions = 0;       // app-level timed exclusions
  int executor_readmissions = 0;     // exclusions expired
  int jobs_aborted = 0;              // jobs finished with completed=false
  // Silent-data-corruption fault domain.
  int corruptions_injected = 0;      // checksum tags flipped by injection
  int corruptions_detected = 0;      // verified reads that caught a bad tag
  int corruptions_repaired = 0;      // detected blocks later rewritten clean
  // Omniscient-simulator view: reads that consumed a corrupt copy without
  // noticing (only possible with verify_reads off). Nonzero means silent
  // wrong results downstream.
  long long corrupt_reads_undetected = 0;
  Bytes bytes_reverified = 0.0;      // data volume checksummed on read

  double mean_detection_latency() const noexcept {
    return heartbeat_detections > 0
               ? detection_latency_sum / heartbeat_detections
               : 0.0;
  }
  void reset() noexcept { *this = FailureStats{}; }
};

struct TaskSpec {
  JobId job = kInvalidId;
  StageId stage = kInvalidId;
  int index = -1;    // position within the task set
  int unit_id = -1;  // partition index, or group id under Stark-E
  int lo = 0;        // first partition (inclusive)
  int hi = 0;        // last partition (exclusive)
  std::vector<ServerId> preferred;  // NODE_LOCAL candidates
};

}  // namespace stark
