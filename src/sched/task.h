// Task and job records shared by the schedulers.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/types.h"

namespace stark {

// How a task's placement related to its preferred executors.
enum class LocalityLevel { kNodeLocal, kAny };

// Why a task run did not produce a result.
enum class TaskFailureKind {
  kExecutorLost,  // the executor died / was declared lost mid-run
  kTaskError,     // the task itself crashed (flaky task, OOM, bad record)
  kFetchFailed,   // a shuffle fetch from a map-output host failed
};

// Fault-tolerance knobs shared by the failure detector and both schedulers.
// Defaults mirror Spark's (spark.task.maxFailures=4, excludeOnFailure
// thresholds, stage.maxConsecutiveAttempts=4), with heartbeat times scaled
// to the simulator's sub-second task durations.
struct FaultOptions {
  // Heartbeat-based failure detection (spark.executor.heartbeatInterval /
  // spark.network.timeout). The driver only learns of a crash or partition
  // once the timeout expires on its check grid.
  double heartbeat_interval = 1.0;
  double heartbeat_timeout = 5.0;
  // Task-level retries with exponential backoff; exhausting them aborts the
  // job cleanly instead of hanging.
  int max_task_failures = 4;
  double retry_backoff = 0.25;     // base delay; doubles per prior failure
  double retry_backoff_max = 8.0;  // cap on the backoff delay
  // Fetch-failure handling: a reduce task burns this long discovering that
  // a map-output host is gone (connection retries), then raises FetchFailed
  // and the map stage is resubmitted, at most max_stage_attempts times.
  int max_stage_attempts = 4;
  double fetch_fail_seconds = 0.5;
  // Executor exclusion (spark.excludeOnFailure.*): per-task, per-stage and
  // application-wide failure counters with timed re-admission.
  bool exclude_on_failure = true;
  int max_task_attempts_per_executor = 1;
  int max_failures_per_executor_stage = 2;
  int max_failures_per_executor = 2;
  double exclude_timeout = 60.0;
};

// Cluster-wide failure machinery counters, surfaced via MetricsCollector.
struct FailureStats {
  int heartbeat_detections = 0;      // executor losses declared by timeout
  double detection_latency_sum = 0;  // actual death -> driver declaration
  int task_failures = 0;             // failed task runs, all causes
  int task_retries = 0;              // failed tasks requeued for another try
  int fetch_failures = 0;            // FetchFailed raised by reduce tasks
  int stage_resubmissions = 0;       // map stages resubmitted for lost output
  int executor_exclusions = 0;       // app-level timed exclusions
  int executor_readmissions = 0;     // exclusions expired
  int jobs_aborted = 0;              // jobs finished with completed=false

  double mean_detection_latency() const noexcept {
    return heartbeat_detections > 0
               ? detection_latency_sum / heartbeat_detections
               : 0.0;
  }
  void reset() noexcept { *this = FailureStats{}; }
};

struct TaskSpec {
  JobId job = kInvalidId;
  StageId stage = kInvalidId;
  int index = -1;    // position within the task set
  int unit_id = -1;  // partition index, or group id under Stark-E
  int lo = 0;        // first partition (inclusive)
  int hi = 0;        // last partition (exclusive)
  std::vector<ServerId> preferred;  // NODE_LOCAL candidates
};

struct TaskMetrics {
  ServerId server = kInvalidId;
  bool node_local = false;
  SimTime submit_time = 0.0;
  SimTime launch_time = 0.0;
  SimTime finish_time = 0.0;

  // Duration breakdown (seconds).
  double cpu = 0.0;           // transformation compute (incl. cached scans)
  double gc = 0.0;            // garbage collection overhead
  double shuffle_read = 0.0;  // network + remote disk for shuffle fetches
  double disk = 0.0;          // local input/checkpoint reads, map-output writes
  double overhead = 0.0;      // launch + dispatch

  // Data volume breakdown (bytes).
  Bytes bytes_from_cache = 0.0;
  Bytes bytes_from_net = 0.0;
  Bytes bytes_from_disk = 0.0;
  Bytes bytes_written = 0.0;

  double duration() const noexcept { return finish_time - launch_time; }
  double queue_delay() const noexcept { return launch_time - submit_time; }
};

enum class ActionType { kCount, kCollect };

struct JobResult {
  JobId id = kInvalidId;
  bool completed = false;
  // Why the job finished with completed=false (task retries exhausted,
  // stage resubmission limit, unschedulable task). Empty on success.
  std::string failure_reason;
  SimTime submit_time = 0.0;
  SimTime finish_time = 0.0;
  double delay = 0.0;  // finish - submit
  int num_stages = 0;
  int num_tasks = 0;
  int node_local_tasks = 0;
  double total_cpu = 0.0;
  double total_gc = 0.0;
  double total_shuffle_read = 0.0;
  Bytes bytes_from_cache = 0.0;
  Bytes bytes_from_net = 0.0;
  Bytes bytes_from_disk = 0.0;
  std::vector<TaskMetrics> tasks;  // per-task detail
};

using JobCallback = std::function<void(const JobResult&)>;

}  // namespace stark
