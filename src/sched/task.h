// Task and job records shared by the schedulers.
#pragma once

#include <functional>
#include <vector>

#include "common/types.h"

namespace stark {

// How a task's placement related to its preferred executors.
enum class LocalityLevel { kNodeLocal, kAny };

struct TaskSpec {
  JobId job = kInvalidId;
  StageId stage = kInvalidId;
  int index = -1;    // position within the task set
  int unit_id = -1;  // partition index, or group id under Stark-E
  int lo = 0;        // first partition (inclusive)
  int hi = 0;        // last partition (exclusive)
  std::vector<ServerId> preferred;  // NODE_LOCAL candidates
};

struct TaskMetrics {
  ServerId server = kInvalidId;
  bool node_local = false;
  SimTime submit_time = 0.0;
  SimTime launch_time = 0.0;
  SimTime finish_time = 0.0;

  // Duration breakdown (seconds).
  double cpu = 0.0;           // transformation compute (incl. cached scans)
  double gc = 0.0;            // garbage collection overhead
  double shuffle_read = 0.0;  // network + remote disk for shuffle fetches
  double disk = 0.0;          // local input/checkpoint reads, map-output writes
  double overhead = 0.0;      // launch + dispatch

  // Data volume breakdown (bytes).
  Bytes bytes_from_cache = 0.0;
  Bytes bytes_from_net = 0.0;
  Bytes bytes_from_disk = 0.0;
  Bytes bytes_written = 0.0;

  double duration() const noexcept { return finish_time - launch_time; }
  double queue_delay() const noexcept { return launch_time - submit_time; }
};

enum class ActionType { kCount, kCollect };

struct JobResult {
  JobId id = kInvalidId;
  bool completed = false;
  SimTime submit_time = 0.0;
  SimTime finish_time = 0.0;
  double delay = 0.0;  // finish - submit
  int num_stages = 0;
  int num_tasks = 0;
  int node_local_tasks = 0;
  double total_cpu = 0.0;
  double total_gc = 0.0;
  double total_shuffle_read = 0.0;
  Bytes bytes_from_cache = 0.0;
  Bytes bytes_from_net = 0.0;
  Bytes bytes_from_disk = 0.0;
  std::vector<TaskMetrics> tasks;  // per-task detail
};

using JobCallback = std::function<void(const JobResult&)>;

}  // namespace stark
