// Stage construction: cutting the lineage DAG at shuffle boundaries.
//
// A stage is a maximal narrow-dependency chain ending at a boundary dataset
// (the job's final RDD, or the map side of a shuffle). Wide dependencies
// encountered while walking narrow chains become ShuffleEdges: the reduce
// side reads them from persistent map outputs, so a materialized shuffle
// needs no parent stage — the mechanism behind both shuffle-output reuse
// across jobs (paper Fig 1's D- case) and recovery anchoring.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "rdd/dataset.h"

namespace stark {

struct ShuffleKey {
  DatasetId child = kInvalidId;
  int dep_index = -1;
  bool operator==(const ShuffleKey&) const = default;
};

struct ShuffleKeyHash {
  std::size_t operator()(const ShuffleKey& k) const noexcept {
    return std::hash<long long>()((static_cast<long long>(k.child) << 32) ^
                                  static_cast<long long>(k.dep_index));
  }
};

// A wide dependency: `child`'s dep at `dep_index` (its parent is the map
// side; `child->partitioner()` defines the reduce-side layout).
struct ShuffleEdge {
  DatasetPtr child;
  std::size_t dep_index = 0;

  ShuffleKey key() const noexcept {
    return {child->id(), static_cast<int>(dep_index)};
  }
  const DatasetPtr& map_side() const noexcept {
    return child->deps()[dep_index].parent;
  }
};

// The narrow-dependency closure of `boundary`: every dataset reachable via
// narrow deps without passing through a checkpointed dataset, plus the wide
// deps discovered on the way. `is_checkpointed` stops traversal.
struct StageChain {
  std::vector<DatasetPtr> datasets;     // boundary first (reverse topo)
  std::vector<ShuffleEdge> shuffle_deps;
};

StageChain collect_stage_chain(
    const DatasetPtr& boundary,
    const std::function<bool(DatasetId)>& is_checkpointed);

}  // namespace stark
