#include "common/key_histogram.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace stark {

void KeyHistogram::recompute_totals() noexcept {
  total_records_ = 0.0;
  total_bytes_ = 0.0;
  for (const auto& e : entries_) {
    total_records_ += e.records;
    total_bytes_ += e.bytes;
  }
}

KeyHistogram KeyHistogram::from_entries(std::vector<Entry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.key < b.key; });
  KeyHistogram h;
  h.entries_.reserve(entries.size());
  for (const auto& e : entries) {
    if (!h.entries_.empty() && h.entries_.back().key == e.key) {
      h.entries_.back().records += e.records;
      h.entries_.back().bytes += e.bytes;
    } else {
      h.entries_.push_back(e);
    }
  }
  h.recompute_totals();
  return h;
}

KeyHistogram KeyHistogram::scaled(double record_factor,
                                  double bytes_factor) const {
  KeyHistogram h;
  h.entries_.reserve(entries_.size());
  for (const auto& e : entries_) {
    h.entries_.push_back(
        {e.key, e.records * record_factor, e.bytes * bytes_factor});
  }
  h.recompute_totals();
  return h;
}

KeyHistogram KeyHistogram::filtered(
    const std::function<bool(Key)>& keep) const {
  KeyHistogram h;
  for (const auto& e : entries_) {
    if (keep(e.key)) h.entries_.push_back(e);
  }
  h.recompute_totals();
  return h;
}

KeyHistogram KeyHistogram::range(Key lo, Key hi) const {
  KeyHistogram h;
  auto first = std::lower_bound(
      entries_.begin(), entries_.end(), lo,
      [](const Entry& e, Key k) { return e.key < k; });
  auto last = std::upper_bound(
      entries_.begin(), entries_.end(), hi,
      [](Key k, const Entry& e) { return k < e.key; });
  h.entries_.assign(first, last);
  h.recompute_totals();
  return h;
}

KeyHistogram KeyHistogram::reduced_by_key(double bytes_factor) const {
  KeyHistogram h;
  h.entries_.reserve(entries_.size());
  for (const auto& e : entries_) {
    h.entries_.push_back({e.key, 1.0, e.bytes * bytes_factor});
  }
  h.recompute_totals();
  return h;
}

KeyHistogram KeyHistogram::distinct() const {
  KeyHistogram h;
  h.entries_.reserve(entries_.size());
  for (const auto& e : entries_) {
    const double per_record = e.records > 0.0 ? e.bytes / e.records : 0.0;
    h.entries_.push_back({e.key, 1.0, per_record});
  }
  h.recompute_totals();
  return h;
}

KeyHistogram KeyHistogram::merge(
    std::span<const KeyHistogram* const> inputs) {
  // K-way merge over sorted entry vectors.
  struct Cursor {
    const KeyHistogram* hist;
    std::size_t idx;
  };
  auto cmp = [](const Cursor& a, const Cursor& b) {
    return a.hist->entries()[a.idx].key > b.hist->entries()[b.idx].key;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(cmp)> pq(cmp);
  for (const KeyHistogram* h : inputs) {
    if (h != nullptr && !h->empty()) pq.push({h, 0});
  }
  KeyHistogram out;
  while (!pq.empty()) {
    Cursor c = pq.top();
    pq.pop();
    const Entry& e = c.hist->entries()[c.idx];
    if (!out.entries_.empty() && out.entries_.back().key == e.key) {
      out.entries_.back().records += e.records;
      out.entries_.back().bytes += e.bytes;
    } else {
      out.entries_.push_back(e);
    }
    if (++c.idx < c.hist->size()) pq.push(c);
  }
  out.recompute_totals();
  return out;
}

KeyHistogram KeyHistogram::merge2(const KeyHistogram& a,
                                  const KeyHistogram& b) {
  const KeyHistogram* inputs[] = {&a, &b};
  return merge(inputs);
}

std::vector<Bytes> KeyHistogram::partition_bytes(
    const std::function<int(Key)>& key_to_partition,
    int num_partitions) const {
  if (num_partitions <= 0) {
    throw std::invalid_argument("partition_bytes: num_partitions must be > 0");
  }
  std::vector<Bytes> out(static_cast<std::size_t>(num_partitions), 0.0);
  for (const auto& e : entries_) {
    const int p = key_to_partition(e.key);
    if (p < 0 || p >= num_partitions) {
      throw std::out_of_range("partition_bytes: partition index out of range");
    }
    out[static_cast<std::size_t>(p)] += e.bytes;
  }
  return out;
}

std::vector<double> KeyHistogram::partition_records(
    const std::function<int(Key)>& key_to_partition,
    int num_partitions) const {
  if (num_partitions <= 0) {
    throw std::invalid_argument(
        "partition_records: num_partitions must be > 0");
  }
  std::vector<double> out(static_cast<std::size_t>(num_partitions), 0.0);
  for (const auto& e : entries_) {
    const int p = key_to_partition(e.key);
    if (p < 0 || p >= num_partitions) {
      throw std::out_of_range(
          "partition_records: partition index out of range");
    }
    out[static_cast<std::size_t>(p)] += e.records;
  }
  return out;
}

Key KeyHistogram::key_at_byte_quantile(double q) const {
  if (entries_.empty()) return 0;
  const double target = q * total_bytes_;
  double acc = 0.0;
  for (const auto& e : entries_) {
    acc += e.bytes;
    if (acc >= target) return e.key;
  }
  return entries_.back().key;
}

}  // namespace stark
