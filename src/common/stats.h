// Statistics accumulators used by benches and schedulers.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace stark {

// Streaming mean/min/max/variance (Welford).
class StatAccumulator {
 public:
  void add(double x) noexcept;
  void merge(const StatAccumulator& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }
  double variance() const noexcept;  // population variance
  double stddev() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Keeps all samples; exact percentiles. Sample counts in this project stay
// small enough (tens of thousands) that exact storage beats a sketch.
class Distribution {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  double mean() const;
  double min() const;
  double max() const;
  // q in [0, 1]; nearest-rank with linear interpolation.
  double percentile(double q) const;
  double median() const { return percentile(0.5); }

  const std::vector<double>& samples() const noexcept { return samples_; }
  void clear() { samples_.clear(); sorted_ = false; }

 private:
  void sort_if_needed() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

// A named time series of (t, value) points, bucketed on demand.
class TimeSeries {
 public:
  void add(double t, double value);
  std::size_t count() const noexcept { return points_.size(); }

  struct Bucket {
    double t_start = 0.0;
    StatAccumulator stats;
  };
  // Group points into fixed-width time buckets covering [t0, t1).
  std::vector<Bucket> bucketize(double t0, double t1, double width) const;

  const std::vector<std::pair<double, double>>& points() const noexcept {
    return points_;
  }

 private:
  std::vector<std::pair<double, double>> points_;
};

// Human-readable byte / duration formatting for bench output.
std::string format_bytes(double bytes);
std::string format_seconds(double seconds);

}  // namespace stark
