// Tiny leveled logger. Quiet by default so tests and benches stay clean;
// set STARK_LOG=debug (env) or call set_log_level for tracing simulations.
#pragma once

#include <cstdio>
#include <string>

namespace stark {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

namespace detail {
void log_line(LogLevel level, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;
}  // namespace detail

#define STARK_LOG_DEBUG(...) \
  ::stark::detail::log_line(::stark::LogLevel::kDebug, __VA_ARGS__)
#define STARK_LOG_INFO(...) \
  ::stark::detail::log_line(::stark::LogLevel::kInfo, __VA_ARGS__)
#define STARK_LOG_WARN(...) \
  ::stark::detail::log_line(::stark::LogLevel::kWarn, __VA_ARGS__)
#define STARK_LOG_ERROR(...) \
  ::stark::detail::log_line(::stark::LogLevel::kError, __VA_ARGS__)

}  // namespace stark
