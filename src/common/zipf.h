// Zipf-distributed key sampling and analytic Zipf weights.
//
// Wikipedia request popularity follows a Zipf law; the generators use this
// both to sample individual keys and to compute expected per-key volumes
// without sampling (the histogram-level fidelity described in DESIGN.md).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace stark {

class ZipfSampler {
 public:
  // Ranks 1..n with P(rank) proportional to rank^-exponent.
  ZipfSampler(std::uint64_t n, double exponent);

  // Sample a rank in [0, n).
  std::uint64_t sample(Rng& rng) const;

  // Probability mass of rank r (0-based).
  double pmf(std::uint64_t rank) const;

  std::uint64_t size() const noexcept { return n_; }
  double exponent() const noexcept { return exponent_; }

  // Expected share of total traffic per rank (== pmf), as a dense vector.
  std::vector<double> shares() const;

 private:
  std::uint64_t n_;
  double exponent_;
  std::vector<double> cdf_;  // inclusive prefix sums, cdf_[n-1] == 1.0
};

}  // namespace stark
