// Minimal fixed-width ASCII table printer for bench output.
//
// Benches print the same rows/series the paper's figures report; a small
// table helper keeps that output aligned and diffable.
#pragma once

#include <string>
#include <vector>

namespace stark {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds a row; missing cells render empty, extra cells are an error.
  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);

  std::string to_string() const;
  void print() const;  // to stdout

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace stark
