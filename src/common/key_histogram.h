// KeyHistogram: the data-content currency of the simulated engine.
//
// Instead of materializing individual records, datasets carry per-key
// aggregate statistics (record count and byte volume). Trace generators
// produce histograms; transformations rewrite them analytically. This gives
// exact partition sizes, skew, filter selectivities, and action results
// while keeping simulation costs proportional to the number of distinct
// keys rather than records (see DESIGN.md §1).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/types.h"

namespace stark {

class KeyHistogram {
 public:
  struct Entry {
    Key key = 0;
    double records = 0.0;
    double bytes = 0.0;
  };

  KeyHistogram() = default;

  // Builds a histogram; entries are sorted by key and duplicates merged.
  static KeyHistogram from_entries(std::vector<Entry> entries);

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }
  const std::vector<Entry>& entries() const noexcept { return entries_; }

  double total_records() const noexcept { return total_records_; }
  Bytes total_bytes() const noexcept { return total_bytes_; }

  // Uniformly scales every key's records/bytes (e.g. map output expansion).
  KeyHistogram scaled(double record_factor, double bytes_factor) const;

  // Keeps only keys satisfying the predicate (exact filter semantics).
  KeyHistogram filtered(const std::function<bool(Key)>& keep) const;

  // Keeps only keys in [lo, hi] (inclusive); O(log n + matched).
  KeyHistogram range(Key lo, Key hi) const;

  // Collapses every key to a single record carrying the summed bytes scaled
  // by `bytes_factor` (reduceByKey semantics).
  KeyHistogram reduced_by_key(double bytes_factor) const;

  // Keeps one representative record per key (distinct semantics): records
  // become 1 and bytes shrink to one record's average size.
  KeyHistogram distinct() const;

  // K-way merge summing stats of equal keys (cogroup/union semantics).
  static KeyHistogram merge(std::span<const KeyHistogram* const> inputs);
  static KeyHistogram merge2(const KeyHistogram& a, const KeyHistogram& b);

  // Sums bytes per partition under a key→partition mapping.
  std::vector<Bytes> partition_bytes(
      const std::function<int(Key)>& key_to_partition, int num_partitions) const;
  std::vector<double> partition_records(
      const std::function<int(Key)>& key_to_partition, int num_partitions) const;

  // Smallest key k such that keys <= k carry at least fraction q of total
  // bytes. Used by RangePartitioner boundary sampling. q in [0, 1].
  Key key_at_byte_quantile(double q) const;

 private:
  std::vector<Entry> entries_;  // sorted by key, unique keys
  double total_records_ = 0.0;
  Bytes total_bytes_ = 0.0;

  void recompute_totals() noexcept;
};

using KeyHistogramPtr = std::shared_ptr<const KeyHistogram>;

}  // namespace stark
