// Deterministic pseudo-random number generation.
//
// The simulator must be fully reproducible: every stochastic choice goes
// through an explicitly seeded Rng. The generator is xoshiro256**, seeded
// via SplitMix64 so that nearby seeds give independent streams.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace stark {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5741524bULL) noexcept;  // "WARK"

  // Raw 64 random bits.
  std::uint64_t next_u64() noexcept;

  // Uniform double in [0, 1).
  double next_double() noexcept;

  // Uniform integer in [0, n). Requires n > 0.
  std::uint64_t next_below(std::uint64_t n) noexcept;

  // Uniform integer in [lo, hi]. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  // Exponentially distributed with given rate (events per unit time).
  double exponential(double rate) noexcept;

  // Poisson-distributed count with the given mean (Knuth for small means,
  // normal approximation above 64 to stay O(1)).
  std::uint64_t poisson(double mean) noexcept;

  // Standard normal via Box-Muller (no cached spare; stateless per call).
  double normal(double mean = 0.0, double stddev = 1.0) noexcept;

  // Derive an independent child stream; deterministic in (state, salt).
  Rng fork(std::uint64_t salt) noexcept;

 private:
  std::uint64_t s_[4];
};

// SplitMix64 step, exposed for hashing keys deterministically.
std::uint64_t splitmix64(std::uint64_t x) noexcept;

}  // namespace stark
