#include "common/zipf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace stark {

ZipfSampler::ZipfSampler(std::uint64_t n, double exponent)
    : n_(n), exponent_(exponent) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be positive");
  cdf_.resize(n);
  double total = 0.0;
  for (std::uint64_t r = 0; r < n; ++r) {
    total += std::pow(static_cast<double>(r + 1), -exponent);
    cdf_[r] = total;
  }
  for (auto& c : cdf_) c /= total;
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::uint64_t rank) const {
  if (rank >= n_) return 0.0;
  const double prev = rank == 0 ? 0.0 : cdf_[rank - 1];
  return cdf_[rank] - prev;
}

std::vector<double> ZipfSampler::shares() const {
  std::vector<double> out(n_);
  double prev = 0.0;
  for (std::uint64_t r = 0; r < n_; ++r) {
    out[r] = cdf_[r] - prev;
    prev = cdf_[r];
  }
  return out;
}

}  // namespace stark
