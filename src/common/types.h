// Fundamental aliases shared across the Stark reproduction.
#pragma once

#include <cstdint>

namespace stark {

// Simulated time, in seconds. All simulator components use this unit.
using SimTime = double;

// Data keys are 64-bit integers. Trace generators map their domain
// (URLs, Z-encoded coordinates, hashtags) into this space.
using Key = std::uint64_t;

// Byte counts are doubles: selectivities and cost-model math produce
// fractional bytes and we never need exact integral sizes.
using Bytes = double;

inline constexpr Bytes kKiB = 1024.0;
inline constexpr Bytes kMiB = 1024.0 * 1024.0;
inline constexpr Bytes kGiB = 1024.0 * 1024.0 * 1024.0;

// Identifier types. Values are dense indexes assigned by their owners.
using ServerId = int;
using DatasetId = int;
using ShuffleId = int;
using JobId = int;
using StageId = int;
using TaskId = int;
// Tenants are dense indexes minted by the TenantRegistry (sched/tenant.h);
// 0 is always the default tenant.
using TenantId = int;

inline constexpr int kInvalidId = -1;

}  // namespace stark
