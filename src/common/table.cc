#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace stark {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) {
    throw std::invalid_argument("Table::add_row: more cells than headers");
  }
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto pad = [](const std::string& s, std::size_t w) {
    std::string out = s;
    out.resize(w, ' ');
    return out;
  };
  std::string out;
  std::string sep;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += pad(headers_[c], widths[c]);
    sep += std::string(widths[c], '-');
    if (c + 1 < headers_.size()) {
      out += "  ";
      sep += "--";
    }
  }
  out += '\n';
  out += sep;
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      out += pad(row[c], widths[c]);
      if (c + 1 < headers_.size()) out += "  ";
    }
    out += '\n';
  }
  return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace stark
