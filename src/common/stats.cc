#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace stark {

void StatAccumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void StatAccumulator::merge(const StatAccumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double StatAccumulator::variance() const noexcept {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double StatAccumulator::stddev() const noexcept {
  return std::sqrt(variance());
}

void Distribution::sort_if_needed() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Distribution::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double Distribution::min() const {
  sort_if_needed();
  return samples_.empty() ? 0.0 : samples_.front();
}

double Distribution::max() const {
  sort_if_needed();
  return samples_.empty() ? 0.0 : samples_.back();
}

double Distribution::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("percentile: q out of range");
  sort_if_needed();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

void TimeSeries::add(double t, double value) { points_.emplace_back(t, value); }

std::vector<TimeSeries::Bucket> TimeSeries::bucketize(double t0, double t1,
                                                      double width) const {
  if (width <= 0.0 || t1 <= t0) return {};
  const std::size_t n =
      static_cast<std::size_t>(std::ceil((t1 - t0) / width));
  std::vector<Bucket> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i].t_start = t0 + static_cast<double>(i) * width;
  }
  for (const auto& [t, v] : points_) {
    if (t < t0 || t >= t1) continue;
    const auto idx = static_cast<std::size_t>((t - t0) / width);
    if (idx < n) out[idx].stats.add(v);
  }
  return out;
}

std::string format_bytes(double bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int u = 0;
  double v = bytes;
  while (std::abs(v) >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", v, kUnits[u]);
  return buf;
}

std::string format_seconds(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  }
  return buf;
}

}  // namespace stark
