#include "common/rng.h"

#include <cmath>

namespace stark {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& s : s_) {
    x = splitmix64(x);
    s = x;
  }
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t n) noexcept {
  // Lemire's multiply-shift bounded generation; the slight modulo bias of
  // the naive fallback is irrelevant for simulation purposes, but this is
  // exact enough and branch-cheap.
  const unsigned __int128 m =
      static_cast<unsigned __int128>(next_u64()) * static_cast<unsigned __int128>(n);
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  return lo + static_cast<std::int64_t>(
                  next_below(static_cast<std::uint64_t>(hi - lo + 1)));
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

double Rng::exponential(double rate) noexcept {
  double u = next_double();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    const double l = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= next_double();
    } while (p > l);
    return k - 1;
  }
  const double x = normal(mean, std::sqrt(mean));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

double Rng::normal(double mean, double stddev) noexcept {
  double u1 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = next_double();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  return mean + stddev * z;
}

Rng Rng::fork(std::uint64_t salt) noexcept {
  return Rng(splitmix64(s_[0] ^ splitmix64(salt)));
}

}  // namespace stark
