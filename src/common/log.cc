#include "common/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdlib>
#include <cstring>

namespace stark {

namespace {
LogLevel initial_level() {
  const char* env = std::getenv("STARK_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<LogLevel> g_level{initial_level()};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

namespace detail {
void log_line(LogLevel level, const char* fmt, ...) {
  if (level < g_level.load()) return;
  std::fprintf(stderr, "[%s] ", level_name(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}
}  // namespace detail

}  // namespace stark
